package obs

import (
	"math/rand"
	"reflect"
	"testing"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// These are the ISSUE's runner-equivalence tests on the real designs:
// for the same array, the lock-step and goroutine runners must produce
// identical per-PE busy-span totals in the exported trace, and those
// totals must equal the engine's own Result busy counts.

func graphInstance(t *testing.T, seed int64) ([]float64, *multistage.Graph) {
	t.Helper()
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, 3, 3, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	mats := g.Matrices()
	return mats[len(mats)-1].Col(0), g
}

func TestDesign1RunnerBusyEquivalence(t *testing.T) {
	v, g := graphInstance(t, 7)
	mats := g.Matrices()
	build := func() *pipearray.Array {
		arr, err := pipearray.New(mats[:len(mats)-1], v)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}

	arr := build()
	lock := NewCycleRecorder(arr.M, arr.ObservedCycles())
	_, resLock, err := arr.RunObserved(false, lock.WireTrace(), lock.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	goro := NewCycleRecorder(arr.M, arr.ObservedCycles())
	_, resGoro, err := build().RunObserved(true, nil, goro.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lock.BusyTotals(), goro.BusyTotals()) {
		t.Errorf("design 1 busy-span totals differ: lockstep %v goroutines %v", lock.BusyTotals(), goro.BusyTotals())
	}
	if !reflect.DeepEqual(lock.BusyTotals(), resLock.Busy) || !reflect.DeepEqual(goro.BusyTotals(), resGoro.Busy) {
		t.Errorf("recorder totals diverge from engine Result busy counts")
	}
	// Wire trace on the goroutine runner must be rejected loudly.
	if _, _, err := build().RunObserved(true, lock.WireTrace(), nil); err == nil {
		t.Error("goroutine runner accepted a wire trace")
	}
}

func TestDesign2RunnerBusyEquivalence(t *testing.T) {
	v, g := graphInstance(t, 11)
	mats := g.Matrices()
	arr, err := bcastarray.New(mats[:len(mats)-1], v)
	if err != nil {
		t.Fatal(err)
	}
	lock := NewCycleRecorder(arr.M, arr.ObservedCycles())
	_, busyLock := arr.RunLockstepObserved(lock.PETrace())
	goro := NewCycleRecorder(arr.M, arr.ObservedCycles())
	_, busyGoro := arr.RunGoroutinesObserved(goro.PETrace())
	if !reflect.DeepEqual(lock.BusyTotals(), goro.BusyTotals()) {
		t.Errorf("design 2 busy-span totals differ: lockstep %v goroutines %v", lock.BusyTotals(), goro.BusyTotals())
	}
	if !reflect.DeepEqual(lock.BusyTotals(), busyLock) || !reflect.DeepEqual(goro.BusyTotals(), busyGoro) {
		t.Errorf("recorder totals diverge from runner busy counts")
	}
}

func TestDesign3RunnerBusyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := multistage.RandomNodeValued(rng, 4, 3, 0, 10)
	build := func() *fbarray.Array {
		arr, err := fbarray.New(p)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	arr := build()
	lock := NewCycleRecorder(arr.M, arr.ObservedCycles())
	resLock, err := arr.RunObserved(false, lock.WireTrace(), lock.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	goro := NewCycleRecorder(arr.M, arr.ObservedCycles())
	resGoro, err := build().RunObserved(true, nil, goro.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lock.BusyTotals(), goro.BusyTotals()) {
		t.Errorf("design 3 busy-span totals differ: lockstep %v goroutines %v", lock.BusyTotals(), goro.BusyTotals())
	}
	if !reflect.DeepEqual(lock.BusyTotals(), resLock.Busy) || !reflect.DeepEqual(goro.BusyTotals(), resGoro.Busy) {
		t.Errorf("recorder totals diverge from engine Result busy counts")
	}
	if resLock.Cost != resGoro.Cost {
		t.Errorf("costs diverge under observation: %v vs %v", resLock.Cost, resGoro.Cost)
	}
}
