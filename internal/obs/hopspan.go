package obs

import (
	"fmt"
	"sync"
	"time"
)

// RouterPid is the trace-event process id used for router hop spans.
const RouterPid = 3

// HopSpan is the router tier's span model: the lifecycle of one request
// hop through dprouter. Its phases are the router's decision points —
// decode_hash (body read + spec decode + canonical hash), candidate_pick
// (ring placement), admission_check (edge shed pricing), then one proxy
// phase per forward attempt, annotated with the replica, the outcome,
// and the attempt number so failover is legible on the timeline. The
// hop's span id is what the router sends downstream as the parent of the
// replica's request span.
type HopSpan struct {
	ID    string // request id
	Start time.Time

	mu      sync.Mutex
	traceID string
	spanID  string
	kind    string // problem kind, once decoded
	phases  []Phase
	end     time.Time
	status  int
	replica string // upstream that produced the final answer, if any
}

// NewHopSpan opens a hop span with a freshly minted span id.
func NewHopSpan(id string, start time.Time) *HopSpan {
	return &HopSpan{ID: id, spanID: NewSpanID(), Start: start}
}

// SetTrace sets the trace this hop belongs to (minted at the edge or
// inherited from the client's own TraceHeader).
func (h *HopSpan) SetTrace(traceID string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.traceID = traceID
	h.mu.Unlock()
}

// Context returns the trace context this hop propagates downstream: the
// trace id plus the hop's own span id as the parent.
func (h *HopSpan) Context() TraceContext {
	if h == nil {
		return TraceContext{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return TraceContext{TraceID: h.traceID, SpanID: h.spanID}
}

// SetKind records the decoded problem kind.
func (h *HopSpan) SetKind(kind string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.kind = kind
	h.mu.Unlock()
}

// Observe records one phase by its wall-clock endpoints.
func (h *HopSpan) Observe(name string, start, end time.Time) {
	h.ObserveNote(name, "", start, end)
}

// ObserveNote records one annotated phase (proxy attempts carry the
// replica/outcome/attempt detail in the note).
func (h *HopSpan) ObserveNote(name, note string, start, end time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.phases = append(h.phases, Phase{Name: name, Offset: start.Sub(h.Start), Duration: end.Sub(start), Note: note})
	h.mu.Unlock()
}

// Finish closes the hop with the client-visible status and the replica
// that answered ("" when no forward succeeded).
func (h *HopSpan) Finish(end time.Time, status int, replica string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.end, h.status, h.replica = end, status, replica
	h.mu.Unlock()
}

// snapshot returns a consistent copy for export.
func (h *HopSpan) snapshot() spanSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return spanSnapshot{
		kind:    h.kind,
		traceID: h.traceID, spanID: h.spanID,
		phases: append([]Phase(nil), h.phases...),
		end:    h.end, status: h.status,
	}
}

// Replica reports the upstream that produced the final answer.
func (h *HopSpan) Replica() string {
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replica
}

// HopRecorder keeps the last cap hop spans in a ring buffer for the
// router's /debug/dptrace endpoint.
type HopRecorder struct {
	mu    sync.Mutex
	ring  []*HopSpan
	next  int
	count int
}

// NewHopRecorder builds a ring of the given capacity (min 1).
func NewHopRecorder(capacity int) *HopRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &HopRecorder{ring: make([]*HopSpan, capacity)}
}

// Add records a finished hop, evicting the oldest when full.
func (r *HopRecorder) Add(h *HopSpan) {
	r.mu.Lock()
	r.ring[r.next] = h
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

// Snapshot returns retained hops oldest-first.
func (r *HopRecorder) Snapshot() []*HopSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*HopSpan, 0, r.count)
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Trace exports the retained hops as a Perfetto-loadable trace, one
// thread track per hop, mirroring SpanRecorder.Trace for the serve tier.
func (r *HopRecorder) Trace() *Trace {
	hops := r.Snapshot()
	tr := NewTrace()
	tr.OtherData["service"] = "dprouter"
	tr.OtherData["spans"] = fmt.Sprintf("%d", len(hops))
	tr.NameProcess(RouterPid, "dprouter hops")
	if len(hops) == 0 {
		return tr
	}
	base := hops[0].Start
	for _, h := range hops {
		if h.Start.Before(base) {
			base = h.Start
		}
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for i, h := range hops {
		tid := i + 1
		snap := h.snapshot()
		tr.NameThread(RouterPid, tid, fmt.Sprintf("hop %s", h.ID))
		total := snap.end.Sub(h.Start)
		if snap.end.IsZero() {
			total = 0
		}
		args := map[string]any{
			"id": h.ID, "problem": snap.kind, "status": snap.status,
		}
		if snap.traceID != "" {
			args["trace_id"] = snap.traceID
			args["span_id"] = snap.spanID
		}
		tr.Span(RouterPid, tid, "hop", snap.kind, us(h.Start.Sub(base)), us(total), args)
		for _, p := range snap.phases {
			var pargs map[string]any
			if p.Note != "" {
				pargs = map[string]any{"note": p.Note}
			}
			tr.Span(RouterPid, tid, p.Name, "stage", us(h.Start.Sub(base)+p.Offset), us(p.Duration), pargs)
		}
	}
	return tr
}
