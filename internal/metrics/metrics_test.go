package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPU(t *testing.T) {
	if got := PU(100, 10, 10); got != 1 {
		t.Errorf("PU = %v, want 1", got)
	}
	if got := PU(50, 10, 10); got != 0.5 {
		t.Errorf("PU = %v, want 0.5", got)
	}
	if PU(5, 0, 3) != 0 || PU(5, 3, 0) != 0 {
		t.Error("degenerate PU must be 0")
	}
}

func TestPUEq9(t *testing.T) {
	// Equation (9): PU = (N-2)/N + 1/(N*m).
	if got, want := PUEq9(4, 3), 2.0/4.0+1.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("PUEq9(4,3) = %v, want %v", got, want)
	}
	// Equation (9) equals the ratio definition on its own terms.
	n, m := 10, 7
	ratio := PU(SerialItersGraph(n, m), n*m, m)
	if math.Abs(PUEq9(n, m)-ratio) > 1e-12 {
		t.Errorf("eq9 %v != ratio %v", PUEq9(n, m), ratio)
	}
	// PU -> 1 as N and m grow.
	if got := PUEq9(10000, 100); got < 0.999 {
		t.Errorf("PUEq9(1e4,100) = %v, want -> 1", got)
	}
}

func TestPropertyEq9MatchesDefinition(t *testing.T) {
	f := func(rawN, rawM uint8) bool {
		n := int(rawN%60) + 3
		m := int(rawM%30) + 1
		return math.Abs(PUEq9(n, m)-PU(SerialItersGraph(n, m), n*m, m)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKT2AndAT2(t *testing.T) {
	if KT2(4, 3) != 36 {
		t.Error("KT2 wrong")
	}
	if AT2(5, 2) != 20 {
		t.Error("AT2 wrong")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("Speedup wrong")
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Error("Speedup by zero must be +inf")
	}
}

func TestAsymptoticPU(t *testing.T) {
	if AsymptoticPU(math.Inf(1)) != 0 {
		t.Error("c=inf must give 0")
	}
	if AsymptoticPU(0) != 1 {
		t.Error("c=0 must give 1")
	}
	if got := AsymptoticPU(1); got != 0.5 {
		t.Errorf("c=1: %v, want 0.5", got)
	}
	if got := AsymptoticPU(3); got != 0.25 {
		t.Errorf("c=3: %v, want 0.25", got)
	}
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Error("Log2 wrong")
	}
}
