// Package metrics implements the evaluation criteria the paper uses to
// compare architectures: processor utilization (PU), the KT^2 and AT^2
// criteria of VLSI complexity theory (Section 4), and speedup.
package metrics

import "math"

// PU is the paper's processor utilization: the ratio of the number of
// serial iterations to the product of the number of parallel iterations
// and the number of processors.
func PU(serialIters, parallelIters, processors int) float64 {
	if parallelIters <= 0 || processors <= 0 {
		return 0
	}
	return float64(serialIters) / (float64(parallelIters) * float64(processors))
}

// PUEq9 is the closed form of equation (9) for Design 1/2 searching an
// (N+1)-stage graph with m nodes per intermediate stage:
//
//	PU = (N-2)/N + 1/(N*m)
func PUEq9(n, m int) float64 {
	return float64(n-2)/float64(n) + 1/(float64(n)*float64(m))
}

// SerialItersGraph returns the single-processor iteration count for the
// same problem, the numerator of equation (9): (N-2)m^2 + m.
func SerialItersGraph(n, m int) int { return (n-2)*m*m + m }

// KT2 returns K * T^2, the processor-time criterion minimised in Figure 6.
func KT2(k int, t float64) float64 { return float64(k) * t * t }

// AT2 returns S(N) * T^2(N), the area-time criterion of Theorem 1 with
// processor count standing in for area.
func AT2(s int, t float64) float64 { return float64(s) * t * t }

// Speedup is serial time over parallel time.
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return math.Inf(1)
	}
	return serial / parallel
}

// AsymptoticPU is the limit of equation (17) in Proposition 1: the
// normalized asymptotic processor utilization of multiplying a string of N
// matrices with k(N) systolic arrays, where cInf = lim k(N)/(N/log2 N).
func AsymptoticPU(cInf float64) float64 {
	switch {
	case math.IsInf(cInf, 1):
		return 0
	case cInf == 0:
		return 1
	default:
		return 1 / (1 + cInf)
	}
}

// Log2 returns log base 2 of x.
func Log2(x float64) float64 { return math.Log2(x) }
