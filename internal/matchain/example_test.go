package matchain_test

import (
	"fmt"

	"systolicdp/internal/matchain"
)

// ExampleDP solves the classic six-matrix instance of equation (6).
func ExampleDP() {
	tab, err := matchain.DP([]int{30, 35, 15, 5, 10, 20, 25})
	if err != nil {
		panic(err)
	}
	fmt.Println(tab.OptimalCost())
	fmt.Println(tab.Parenthesization())
	// Output:
	// 15125
	// ((M1 (M2 M3)) ((M4 M5) M6))
}

// ExampleTdRecurrence shows Proposition 2: the broadcast-bus design
// orders N matrices in N steps.
func ExampleTdRecurrence() {
	fmt.Println(matchain.TdRecurrence(64), matchain.TpRecurrence(64))
	// Output:
	// 64 128
}
