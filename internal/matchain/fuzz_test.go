package matchain

import "testing"

// FuzzDPInvariants checks the ordering DP on arbitrary dimension vectors:
// valid inputs must satisfy the polyadic Principle of Optimality and agree
// with the bus/systolic simulators; invalid inputs must be rejected, never
// panic.
func FuzzDPInvariants(f *testing.F) {
	f.Add([]byte{30, 35, 15, 5, 10, 20, 25})
	f.Add([]byte{1, 1})
	f.Add([]byte{0, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		dims := make([]int, len(raw))
		for i, b := range raw {
			dims[i] = int(b)
		}
		tab, err := DP(dims)
		if err != nil {
			return // invalid dims rejected cleanly
		}
		bus, err := SimulateBus(dims)
		if err != nil {
			t.Fatal(err)
		}
		if bus.Cost != tab.OptimalCost() {
			t.Fatalf("bus cost %v != DP %v for dims %v", bus.Cost, tab.OptimalCost(), dims)
		}
		if bus.Completion != float64(tab.N) {
			t.Fatalf("bus completion %v != N=%d", bus.Completion, tab.N)
		}
		if got := tab.MultiplyCost(); got != tab.OptimalCost() {
			t.Fatalf("split tree cost %v != table %v", got, tab.OptimalCost())
		}
	})
}
