package matchain

import (
	"math/rand"
	"testing"
)

func randDims(rng *rand.Rand, n int) []int {
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(12)
	}
	return dims
}

// Batched tables must equal DP's bitwise — Cost and Split both, since the
// serving path renders the parenthesisation from Split.
func TestWavefrontBatchMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 3, 8, 15} {
		for _, b := range []int{1, 2, 7} {
			dimsList := make([][]int, b)
			for q := range dimsList {
				dimsList[q] = randDims(rng, n)
			}
			tabs, cycles, err := WavefrontBatch(dimsList)
			if err != nil {
				t.Fatalf("WavefrontBatch(n=%d b=%d): %v", n, b, err)
			}
			wantCycles := b
			if n >= 2 {
				wantCycles = b*(n-1) + (n - 1)
			}
			if cycles != wantCycles {
				t.Fatalf("n=%d b=%d: cycles = %d, want %d", n, b, cycles, wantCycles)
			}
			for q, dims := range dimsList {
				ref, err := DP(dims)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := tabs[q].OptimalCost(), ref.OptimalCost(); got != want {
					t.Fatalf("n=%d b=%d instance %d: cost %v != DP %v", n, b, q, got, want)
				}
				if got, want := tabs[q].Parenthesization(), ref.Parenthesization(); got != want {
					t.Fatalf("n=%d b=%d instance %d: ordering %q != DP %q", n, b, q, got, want)
				}
			}
		}
	}
}

func TestWavefrontBatchOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dimsList := make([][]int, 5)
	for q := range dimsList {
		dimsList[q] = randDims(rng, 6)
	}
	fwd, _, err := WavefrontBatch(dimsList)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([][]int, len(dimsList))
	for q := range dimsList {
		rev[q] = dimsList[len(dimsList)-1-q]
	}
	back, _, err := WavefrontBatch(rev)
	if err != nil {
		t.Fatal(err)
	}
	for q := range dimsList {
		if fwd[q].OptimalCost() != back[len(dimsList)-1-q].OptimalCost() {
			t.Fatalf("instance %d: cost differs under batch reordering", q)
		}
	}
}

func TestWavefrontBatchRejectsMismatchedShapes(t *testing.T) {
	if _, _, err := WavefrontBatch([][]int{{2, 3, 4}, {2, 3, 4, 5}}); err == nil {
		t.Fatal("mismatched chain lengths accepted")
	}
	if _, _, err := WavefrontBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := WavefrontBatch([][]int{{2, 0, 4}}); err == nil {
		t.Fatal("invalid dims accepted")
	}
}
