package matchain

import (
	"fmt"
	"math"
)

// WavefrontBatch fills B same-length chain tables with ONE shared
// diagonal wavefront: wave s evaluates every size-s subproblem of every
// instance before any instance advances to size s+1, the stacked-lattice
// form of the Guibas-Kung-Thompson sweep (one triangular array, B tables
// resident). All dims vectors must share their length; a mismatch fails
// the whole batch.
//
// Per instance the cell updates are exactly DP's float64 operations (same
// k scan order, same strict-< argmin), so Cost and Split are bitwise
// identical to DP — only the interleaving across instances differs.
//
// The returned cycle count is the streamed Proposition-3 model: one
// instance completes in T_p(N) = 2(n-1) ripple cycles (fill n-1 plus
// drain n-1), and a following instance can enter one wave behind the
// previous one, so B stacked instances finish in B·(n−1) + (n−1) cycles
// instead of B·2(n−1) — the fill is paid once.
func WavefrontBatch(dimsList [][]int) (tables []*Table, cycles int, err error) {
	if len(dimsList) == 0 {
		return nil, 0, fmt.Errorf("matchain: empty batch")
	}
	b := len(dimsList)
	tables = make([]*Table, b)
	var n int
	for q, dims := range dimsList {
		nq, err := validDims(dims)
		if err != nil {
			return nil, 0, fmt.Errorf("matchain: batch instance %d: %v", q, err)
		}
		if q == 0 {
			n = nq
		} else if nq != n {
			return nil, 0, fmt.Errorf("matchain: batch instance %d has n=%d, batch shape is n=%d", q, nq, n)
		}
		t := &Table{N: nq, Dims: append([]int(nil), dims...)}
		t.Cost = make([][]float64, nq)
		t.Split = make([][]int, nq)
		for i := range t.Cost {
			t.Cost[i] = make([]float64, nq)
			t.Split[i] = make([]int, nq)
			for j := range t.Split[i] {
				t.Split[i][j] = -1
			}
		}
		tables[q] = t
	}
	for s := 2; s <= n; s++ {
		for q, t := range tables {
			dims := dimsList[q]
			for i := 0; i+s-1 < n; i++ {
				j := i + s - 1
				best, arg := math.Inf(1), -1
				for k := i; k < j; k++ {
					c := t.Cost[i][k] + t.Cost[k+1][j] + float64(dims[i]*dims[k+1]*dims[j+1])
					if c < best {
						best, arg = c, k
					}
				}
				t.Cost[i][j] = best
				t.Split[i][j] = arg
			}
		}
	}
	if n < 2 {
		// A single-matrix chain has no waves; the model still charges one
		// cycle per instance for the trivial answer.
		return tables, b, nil
	}
	return tables, b*(n-1) + (n - 1), nil
}
