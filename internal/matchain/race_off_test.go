//go:build !race

package matchain

const raceEnabled = false
