package matchain

import (
	"math/rand"
	"testing"
)

// TestFlatBitwiseVsDP pins the flat kernel cell-by-cell against DP:
// every Cost value bitwise, every Split index equal, plus the rendered
// parenthesization.
func TestFlatBitwiseVsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 7, 16, 40} {
		dims := randDims(rng, n)
		want, err := DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DPFlat(dims)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if got.Cost[i*n+j] != want.Cost[i][j] {
					t.Fatalf("n=%d cell (%d,%d): cost %v != %v", n, i, j, got.Cost[i*n+j], want.Cost[i][j])
				}
				if got.CostT[j*n+i] != want.Cost[i][j] {
					t.Fatalf("n=%d cell (%d,%d): transpose out of sync", n, i, j)
				}
				if got.Split[i*n+j] != want.Split[i][j] {
					t.Fatalf("n=%d cell (%d,%d): split %d != %d", n, i, j, got.Split[i*n+j], want.Split[i][j])
				}
			}
		}
		if got.Parenthesization() != want.Parenthesization() {
			t.Fatalf("n=%d: parenthesization %q != %q", n, got.Parenthesization(), want.Parenthesization())
		}
		cost, paren, err := SolveFast(dims)
		if err != nil {
			t.Fatal(err)
		}
		if cost != want.OptimalCost() || paren != want.Parenthesization() {
			t.Fatalf("n=%d: SolveFast (%v, %q) != DP (%v, %q)", n, cost, paren, want.OptimalCost(), want.Parenthesization())
		}
	}
}

func TestFlatRejectsBadDims(t *testing.T) {
	if _, err := DPFlat([]int{3}); err == nil {
		t.Fatal("single-dim chain accepted")
	}
	if _, err := DPFlat([]int{3, 0, 2}); err == nil {
		t.Fatal("nonpositive dimension accepted")
	}
	if _, _, err := SolveFast([]int{3}); err == nil {
		t.Fatal("SolveFast accepted a single-dim chain")
	}
}

func TestWavefrontBatchFastMatchesWavefrontBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, b := range []int{1, 2, 7} {
		dimsList := make([][]int, b)
		for q := range dimsList {
			dimsList[q] = randDims(rng, 9)
		}
		wantTabs, wantCycles, err := WavefrontBatch(dimsList)
		if err != nil {
			t.Fatal(err)
		}
		costs, parens, cycles, err := WavefrontBatchFast(dimsList)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != wantCycles {
			t.Fatalf("b=%d: cycles %d != %d", b, cycles, wantCycles)
		}
		for q := range wantTabs {
			if costs[q] != wantTabs[q].OptimalCost() {
				t.Fatalf("b=%d q=%d: cost %v != %v", b, q, costs[q], wantTabs[q].OptimalCost())
			}
			if parens[q] != wantTabs[q].Parenthesization() {
				t.Fatalf("b=%d q=%d: paren %q != %q", b, q, parens[q], wantTabs[q].Parenthesization())
			}
		}
	}
	// Mismatched lengths fail the whole batch, like WavefrontBatch.
	if _, _, _, err := WavefrontBatchFast([][]int{{2, 3, 4}, {2, 3}}); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	if _, _, _, err := WavefrontBatchFast(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestFlatSolveZeroAllocSteadyState is the tentpole's allocation gate
// for the chain kernel: refilling a warm flat table allocates nothing.
func TestFlatSolveZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(23))
	dims := randDims(rng, 24)
	var f Flat
	if err := f.Solve(dims); err != nil { // warm the backing arrays
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.Solve(dims); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Flat.Solve allocates %v objects/op steady-state, want 0", allocs)
	}
}

func TestWavefrontBatchFastIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(24))
	dimsList := [][]int{randDims(rng, 12), randDims(rng, 12)}
	costs := make([]float64, len(dimsList))
	if _, err := WavefrontBatchFastInto(costs, nil, dimsList); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := WavefrontBatchFastInto(costs, nil, dimsList); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WavefrontBatchFastInto allocates %v objects/op steady-state, want 0", allocs)
	}
}

func BenchmarkChainDP24(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	dims := randDims(rng, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DP(dims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainFlat24(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	dims := randDims(rng, 24)
	var f Flat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.Solve(dims); err != nil {
			b.Fatal(err)
		}
	}
}
