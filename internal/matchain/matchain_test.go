package matchain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/semiring"
)

func randomDims(rng *rand.Rand, n int) []int {
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(20)
	}
	return dims
}

func TestCLRSExample(t *testing.T) {
	// The classic six-matrix instance: dims 30,35,15,5,10,20,25 has
	// optimal cost 15125 with ((M1(M2 M3))((M4 M5)M6)).
	tab, err := DP([]int{30, 35, 15, 5, 10, 20, 25})
	if err != nil {
		t.Fatal(err)
	}
	if tab.OptimalCost() != 15125 {
		t.Errorf("cost = %v, want 15125", tab.OptimalCost())
	}
	if got := tab.Parenthesization(); got != "((M1 (M2 M3)) ((M4 M5) M6))" {
		t.Errorf("parenthesization = %q", got)
	}
}

func TestPaperFourMatrixExample(t *testing.T) {
	// The paper's Section 2 example, M1 x M2 x M3 x M4: three orderings at
	// the top level. Verify against brute force on a concrete instance.
	dims := []int{5, 4, 6, 2, 7}
	tab, err := DP(dims)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForce(dims)
	if err != nil {
		t.Fatal(err)
	}
	if tab.OptimalCost() != bf {
		t.Errorf("DP %v != brute force %v", tab.OptimalCost(), bf)
	}
}

func TestDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		dims := randomDims(rng, 1+rng.Intn(8))
		tab, err := DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(dims)
		if err != nil {
			t.Fatal(err)
		}
		if tab.OptimalCost() != bf {
			t.Fatalf("trial %d dims %v: DP %v != brute %v", trial, dims, tab.OptimalCost(), bf)
		}
		if got := tab.MultiplyCost(); got != tab.OptimalCost() {
			t.Fatalf("trial %d: split-tree cost %v != table %v", trial, got, tab.OptimalCost())
		}
	}
}

func TestSingleMatrix(t *testing.T) {
	tab, err := DP([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if tab.OptimalCost() != 0 || tab.Parenthesization() != "M1" {
		t.Errorf("single matrix: cost %v, paren %q", tab.OptimalCost(), tab.Parenthesization())
	}
}

func TestDimErrors(t *testing.T) {
	if _, err := DP([]int{5}); err == nil {
		t.Error("too-few dims accepted")
	}
	if _, err := DP([]int{5, 0, 3}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := BruteForce([]int{2}); err == nil {
		t.Error("BruteForce too-few dims accepted")
	}
	if _, err := SimulateBus([]int{1}); err == nil {
		t.Error("SimulateBus too-few dims accepted")
	}
	if _, err := Wavefront([]int{2, 2}, 0); err == nil {
		t.Error("Wavefront workers=0 accepted")
	}
}

func TestBuildANDORMatchesDP(t *testing.T) {
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		dims := randomDims(rng, 1+rng.Intn(7))
		g, err := BuildANDOR(dims)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := g.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		if got := vals[g.Roots[0]]; got != tab.OptimalCost() {
			t.Fatalf("trial %d dims %v: AND/OR %v != DP %v", trial, dims, got, tab.OptimalCost())
		}
	}
}

func TestFigure2GraphIsNonserial(t *testing.T) {
	// For four matrices the graph of Figure 2 cannot have adjacent-level
	// arcs only; Serialize fixes that without changing the result.
	mp := semiring.MinPlus{}
	g, err := BuildANDOR([]int{5, 4, 6, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsSerial() {
		t.Error("four-matrix AND/OR-graph should be nonserial")
	}
	before, err := g.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	sg, added := g.Serialize()
	if !sg.IsSerial() {
		t.Error("Serialize failed to serialise")
	}
	if added == 0 {
		t.Error("Serialize added no dummy nodes")
	}
	after, err := sg.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if before[g.Roots[0]] != after[sg.Roots[0]] {
		t.Errorf("serialisation changed result: %v vs %v", before[g.Roots[0]], after[sg.Roots[0]])
	}
}

func TestProposition2TdEqualsN(t *testing.T) {
	for n := 1; n <= 200; n++ {
		if got := TdRecurrence(n); got != n {
			t.Fatalf("T_d(%d) = %d, want %d", n, got, n)
		}
	}
}

func TestProposition3TpEquals2N(t *testing.T) {
	for n := 1; n <= 200; n++ {
		if got := TpRecurrence(n); got != 2*n {
			t.Fatalf("T_p(%d) = %d, want %d", n, got, 2*n)
		}
	}
}

func TestSimulateBusCompletionEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 64} {
		dims := randomDims(rng, n)
		res, err := SimulateBus(dims)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion != float64(n) {
			t.Errorf("n=%d: bus completion %v, want %d (Prop 2)", n, res.Completion, n)
		}
		tab, _ := DP(dims)
		if res.Cost != tab.OptimalCost() {
			t.Errorf("n=%d: bus cost %v != DP %v", n, res.Cost, tab.OptimalCost())
		}
		if res.Processors != n*(n+1)/2 {
			t.Errorf("n=%d: processors %d, want %d", n, res.Processors, n*(n+1)/2)
		}
	}
}

func TestSimulateSystolicCompletionEquals2N(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 64} {
		dims := randomDims(rng, n)
		res, err := SimulateSystolic(dims)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion != float64(2*n) {
			t.Errorf("n=%d: systolic completion %v, want %d (Prop 3)", n, res.Completion, 2*n)
		}
		tab, _ := DP(dims)
		if res.Cost != tab.OptimalCost() {
			t.Errorf("n=%d: systolic cost %v != DP %v", n, res.Cost, tab.OptimalCost())
		}
	}
}

func TestSerializationDoublesTime(t *testing.T) {
	// Section 6.2: the serialisation trades a 2x delay for planarity.
	rng := rand.New(rand.NewSource(5))
	dims := randomDims(rng, 24)
	bus, err := SimulateBus(dims)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := SimulateSystolic(dims)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Completion != 2*bus.Completion {
		t.Errorf("systolic %v, bus %v: want exact 2x", sys.Completion, bus.Completion)
	}
}

func TestWavefrontMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, workers := range []int{1, 2, 4, 8} {
		dims := randomDims(rng, 20)
		seq, err := DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Wavefront(dims, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.OptimalCost() != seq.OptimalCost() {
			t.Errorf("workers=%d: wavefront %v != DP %v", workers, par.OptimalCost(), seq.OptimalCost())
		}
		for i := 0; i < seq.N; i++ {
			for j := i; j < seq.N; j++ {
				if seq.Cost[i][j] != par.Cost[i][j] {
					t.Fatalf("workers=%d: cost[%d][%d] differs", workers, i, j)
				}
			}
		}
	}
}

func TestPropertyDPOptimalityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := randomDims(rng, 2+rng.Intn(10))
		tab, err := DP(dims)
		if err != nil {
			return false
		}
		n := tab.N
		// Principle of Optimality (polyadic form): every stored cost must
		// equal the min over splits of its sub-costs.
		for s := 2; s <= n; s++ {
			for i := 0; i+s-1 < n; i++ {
				j := i + s - 1
				best := math.Inf(1)
				for k := i; k < j; k++ {
					c := tab.Cost[i][k] + tab.Cost[k+1][j] + float64(dims[i]*dims[k+1]*dims[j+1])
					if c < best {
						best = c
					}
				}
				if tab.Cost[i][j] != best {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBySizeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := SimulateBus(randomDims(rng, 16))
	if err != nil {
		t.Fatal(err)
	}
	for s := 2; s < len(res.BySize); s++ {
		if res.BySize[s] < res.BySize[s-1] {
			t.Errorf("BySize not monotone at %d: %v < %v", s, res.BySize[s], res.BySize[s-1])
		}
	}
}

func TestSolveOnEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 3, 4, 6, 8} {
		dims := randomDims(rng, n)
		res, err := SolveOnEngine(dims)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tab, err := DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != tab.OptimalCost() {
			t.Errorf("n=%d: engine %v != DP %v", n, res.Cost, tab.OptimalCost())
		}
		// Wavefront completes in the serialised height: 2(n-1) levels
		// (one OR and one AND level per added matrix).
		if want := 2 * (n - 1); res.Cycles != want {
			t.Errorf("n=%d: %d cycles, want %d", n, res.Cycles, want)
		}
		if n >= 3 && res.Dummies == 0 {
			t.Errorf("n=%d: expected dummy nodes", n)
		}
	}
}

func TestSplitTreeStructure(t *testing.T) {
	tab, err := DP([]int{30, 35, 15, 5, 10, 20, 25})
	if err != nil {
		t.Fatal(err)
	}
	root := tab.SplitTree()
	if root.Lo != 0 || root.Hi != 5 {
		t.Fatalf("root span [%d,%d]", root.Lo, root.Hi)
	}
	// In-order leaves must be 0..n-1 and every internal node's children
	// must partition its span at the table's split point.
	var leaves []int
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Leaf() {
			if n.Left != nil || n.Right != nil {
				t.Fatal("leaf with children")
			}
			leaves = append(leaves, n.Lo)
			return
		}
		if n.Left.Lo != n.Lo || n.Right.Hi != n.Hi || n.Left.Hi+1 != n.Right.Lo {
			t.Fatalf("bad partition at [%d,%d]", n.Lo, n.Hi)
		}
		if n.Left.Hi != tab.Split[n.Lo][n.Hi] {
			t.Fatalf("split mismatch at [%d,%d]", n.Lo, n.Hi)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	for i, l := range leaves {
		if l != i {
			t.Fatalf("in-order leaves %v", leaves)
		}
	}
}
