// Package matchain implements the optimal matrix-chain-ordering problem —
// the paper's running example of a polyadic-nonserial DP formulation
// (equation (6), Figure 2) — and the two parallel evaluation schemes of
// Section 6.2:
//
//   - the broadcast-bus design, in which each of the n(n+1)/2 processors
//     evaluates one OR-node and its AND-children, communicating over
//     multiple broadcast busses; completion time obeys equation (42),
//     T_d(k) = T_d(ceil(k/2)) + floor(k/2), whose solution is T_d(N) = N
//     (Proposition 2);
//   - the serialised/systolic design obtained by inserting dummy nodes so
//     all arcs join adjacent levels (Figure 8); results ripple one level
//     per cycle, completion obeys equation (43),
//     T_p(k) = T_p(ceil(k/2)) + 2*floor(k/2) with T_p(1) = 2, whose
//     solution is T_p(N) = 2N (Proposition 3) — the structure of the
//     Guibas-Kung-Thompson array.
//
// Both simulators actually compute the m_{i,j} cost table while tracking
// time, so correctness is checked against the sequential DP of equation
// (6) and a brute-force enumeration of parenthesisations.
package matchain

import (
	"fmt"
	"math"
	"strings"

	"systolicdp/internal/andor"
	"systolicdp/internal/semiring"
)

// Table is the DP table of equation (6): Cost[i][j] is m_{i,j}, the
// minimum scalar-multiplication cost of computing M_i x ... x M_j
// (0-indexed, i <= j), and Split[i][j] the optimal split point k.
type Table struct {
	N     int
	Dims  []int
	Cost  [][]float64
	Split [][]int
}

func validDims(dims []int) (int, error) {
	n := len(dims) - 1
	if n < 1 {
		return 0, fmt.Errorf("matchain: need at least one matrix (2 dims), have %d dims", len(dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("matchain: dimension %d is %d, must be positive", i, d)
		}
	}
	return n, nil
}

// DP solves equation (6) sequentially in O(n^3): the single-processor
// baseline for the ordering problem.
func DP(dims []int) (*Table, error) {
	n, err := validDims(dims)
	if err != nil {
		return nil, err
	}
	t := &Table{N: n, Dims: append([]int(nil), dims...)}
	t.Cost = make([][]float64, n)
	t.Split = make([][]int, n)
	for i := range t.Cost {
		t.Cost[i] = make([]float64, n)
		t.Split[i] = make([]int, n)
		for j := range t.Split[i] {
			t.Split[i][j] = -1
		}
	}
	for s := 2; s <= n; s++ {
		for i := 0; i+s-1 < n; i++ {
			j := i + s - 1
			best, arg := math.Inf(1), -1
			for k := i; k < j; k++ {
				c := t.Cost[i][k] + t.Cost[k+1][j] + float64(dims[i]*dims[k+1]*dims[j+1])
				if c < best {
					best, arg = c, k
				}
			}
			t.Cost[i][j] = best
			t.Split[i][j] = arg
		}
	}
	return t, nil
}

// OptimalCost returns m_{1,N}, the cost of the best ordering.
func (t *Table) OptimalCost() float64 { return t.Cost[0][t.N-1] }

// Parenthesization renders the optimal order, e.g. "((M1 M2)(M3 M4))".
func (t *Table) Parenthesization() string {
	var b strings.Builder
	var rec func(i, j int)
	rec = func(i, j int) {
		if i == j {
			fmt.Fprintf(&b, "M%d", i+1)
			return
		}
		k := t.Split[i][j]
		b.WriteByte('(')
		rec(i, k)
		b.WriteByte(' ')
		rec(k+1, j)
		b.WriteByte(')')
	}
	rec(0, t.N-1)
	return b.String()
}

// MultiplyCost recomputes the scalar-multiplication cost of the optimal
// ordering by walking the split tree; it must equal OptimalCost.
func (t *Table) MultiplyCost() float64 {
	var rec func(i, j int) (rows, cols int, cost float64)
	rec = func(i, j int) (int, int, float64) {
		if i == j {
			return t.Dims[i], t.Dims[i+1], 0
		}
		k := t.Split[i][j]
		r1, c1, f1 := rec(i, k)
		r2, c2, f2 := rec(k+1, j)
		if c1 != r2 {
			panic("matchain: split tree dimension mismatch")
		}
		return r1, c2, f1 + f2 + float64(r1*c1*c2)
	}
	_, _, c := rec(0, t.N-1)
	return c
}

// BruteForce enumerates every parenthesisation (Catalan growth — small n
// only) and returns the optimal cost, for validating DP.
func BruteForce(dims []int) (float64, error) {
	n, err := validDims(dims)
	if err != nil {
		return 0, err
	}
	memoLess := func() func(i, j int) float64 {
		var rec func(i, j int) float64
		rec = func(i, j int) float64 {
			if i == j {
				return 0
			}
			best := math.Inf(1)
			for k := i; k < j; k++ {
				c := rec(i, k) + rec(k+1, j) + float64(dims[i]*dims[k+1]*dims[j+1])
				if c < best {
					best = c
				}
			}
			return best
		}
		return rec
	}()
	return memoLess(0, n-1), nil
}

// BuildANDOR constructs the AND/OR-graph of Figure 2 for the chain: an
// OR-node per subproblem m_{i,j} whose AND-children (one per split k) sum
// m_{i,k}, m_{k+1,j} and the additive constant r_{i-1}*r_k*r_j. The roots
// slice holds the single root m_{1,N}. The graph is nonserial: AND-nodes
// at high levels connect directly to low-level OR-nodes, so IsSerial
// reports false for n >= 3 until Serialize inserts the dummy nodes of
// Figure 8.
func BuildANDOR(dims []int) (*andor.Graph, error) {
	n, err := validDims(dims)
	if err != nil {
		return nil, err
	}
	g := &andor.Graph{}
	// id[i][j] is the node computing m_{i,j}.
	id := make([][]int, n)
	for i := range id {
		id[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		id[i][i] = g.AddLeaf(0) // m_{i,i} = 0
	}
	for s := 2; s <= n; s++ {
		for i := 0; i+s-1 < n; i++ {
			j := i + s - 1
			ands := make([]int, 0, s-1)
			for k := i; k < j; k++ {
				extra := float64(dims[i] * dims[k+1] * dims[j+1])
				ands = append(ands, g.AddNode(andor.And, []int{id[i][k], id[k+1][j]}, extra))
			}
			id[i][j] = g.AddNode(andor.Or, ands, 0)
		}
	}
	g.Roots = []int{id[0][n-1]}
	return g, nil
}

// TdRecurrence evaluates equation (42): the broadcast-bus completion time
// for a chain of k matrices. Proposition 2 proves T_d(N) = N.
func TdRecurrence(k int) int {
	if k <= 1 {
		return 1
	}
	return TdRecurrence((k+1)/2) + k/2
}

// TpRecurrence evaluates equation (43) with T_p(1) = 2: the serialised
// systolic completion time. Proposition 3 proves T_p(N) = 2N.
func TpRecurrence(k int) int {
	if k <= 1 {
		return 2
	}
	return TpRecurrence((k+1)/2) + 2*(k/2)
}

// TimingResult reports a simulated parallel ordering run.
type TimingResult struct {
	Cost       float64   // optimal ordering cost (must equal DP)
	Completion float64   // completion time of the root processor
	BySize     []float64 // completion time of the slowest subproblem of each size (index = size)
	Processors int       // n(n+1)/2 processors, one per subproblem
}

// simulate runs the event-driven model shared by the two designs.
// transfer(a, s) is the time for a completed subproblem of size a to reach
// the processor of a size-s parent (0 for the broadcast bus, s-a level
// hops for the serialised systolic design). Each processor performs two
// additions and two comparisons per step, i.e. it consumes up to two ready
// split candidates per time unit, exactly the paper's step semantics.
func simulate(dims []int, base float64, transfer func(a, s int) float64) (*TimingResult, error) {
	n, err := validDims(dims)
	if err != nil {
		return nil, err
	}
	done := make([][]float64, n) // completion time of (i,j)
	cost := make([][]float64, n)
	for i := range done {
		done[i] = make([]float64, n)
		cost[i] = make([]float64, n)
		done[i][i] = base
	}
	res := &TimingResult{BySize: make([]float64, n+1), Processors: n * (n + 1) / 2}
	res.BySize[1] = base
	for s := 2; s <= n; s++ {
		worst := 0.0
		for i := 0; i+s-1 < n; i++ {
			j := i + s - 1
			// Candidate k ready when both parts have arrived.
			readies := make([]float64, 0, s-1)
			best := math.Inf(1)
			for k := i; k < j; k++ {
				a, b := k-i+1, j-k
				r := math.Max(done[i][k]+transfer(a, s), done[k+1][j]+transfer(b, s))
				readies = append(readies, r)
				if c := cost[i][k] + cost[k+1][j] + float64(dims[i]*dims[k+1]*dims[j+1]); c < best {
					best = c
				}
			}
			cost[i][j] = best
			done[i][j] = finishTime(readies, 2)
			if done[i][j] > worst {
				worst = done[i][j]
			}
		}
		res.BySize[s] = worst
	}
	res.Cost = cost[0][n-1]
	res.Completion = done[0][n-1]
	return res, nil
}

// finishTime returns the earliest time by which a processor consuming up
// to `rate` ready candidates per unit step has consumed them all, given
// each candidate's ready time.
func finishTime(readies []float64, rate int) float64 {
	sorted := append([]float64(nil), readies...)
	for i := 1; i < len(sorted); i++ { // insertion sort: lists are short
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	t := 0.0
	doneCnt := 0
	for doneCnt < len(sorted) {
		if sorted[doneCnt] > t {
			t = sorted[doneCnt]
		}
		avail := 0
		for doneCnt+avail < len(sorted) && sorted[doneCnt+avail] <= t {
			avail++
		}
		take := avail
		if take > rate {
			take = rate
		}
		doneCnt += take
		t++
	}
	return t
}

// SimulateBus runs the broadcast-bus design of Proposition 2: results are
// visible to every processor the moment they complete (transfer = 0).
// Completion must equal T_d(N) = N.
func SimulateBus(dims []int) (*TimingResult, error) {
	return simulate(dims, 1, func(a, s int) float64 { return 0 })
}

// SimulateSystolic runs the serialised design of Proposition 3: a result
// produced at level a must ripple through s-a dummy levels to reach a
// size-s consumer (the dotted nodes of Figure 8). Completion must equal
// T_p(N) = 2N.
func SimulateSystolic(dims []int) (*TimingResult, error) {
	return simulate(dims, 2, func(a, s int) float64 { return float64(s - a) })
}

// EngineResult reports a run of the ordering problem on the systolic
// engine.
type EngineResult struct {
	Cost       float64
	Cycles     int // wavefront cycles (= serialised graph height)
	Processors int
	Dummies    int // pass-through nodes added by serialisation
}

// SolveOnEngine runs the full Section 6.2 pipeline in hardware terms:
// build the Figure-2 AND/OR-graph, serialise it with dummy nodes
// (Figure 8), map one PE per node onto the systolic engine, and run to
// completion — the Guibas-Kung-Thompson structure executed cycle by
// cycle. The cost equals DP; Cycles equals the serialised graph height
// (2(n-1) for n matrices), the Proposition-3 wavefront.
func SolveOnEngine(dims []int) (*EngineResult, error) {
	g, err := BuildANDOR(dims)
	if err != nil {
		return nil, err
	}
	sg, dummies := g.Serialize()
	res, err := sg.MapSystolic(semiring.MinPlus{}, false)
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Cost:       res.RootValues[0],
		Cycles:     res.Cycles,
		Processors: res.Processors,
		Dummies:    dummies,
	}, nil
}

// TreeNode is one node of the optimal parenthesisation tree: a leaf
// (Lo == Hi) is matrix M_{Lo+1}; an internal node multiplies its
// subtrees' products.
type TreeNode struct {
	Lo, Hi      int
	Left, Right *TreeNode
}

// Leaf reports whether the node is a single matrix.
func (n *TreeNode) Leaf() bool { return n.Lo == n.Hi }

// SplitTree materialises the optimal parenthesisation as an explicit
// binary tree — the dataflow graph Section 4's closing remark schedules
// asynchronously.
func (t *Table) SplitTree() *TreeNode {
	var rec func(i, j int) *TreeNode
	rec = func(i, j int) *TreeNode {
		n := &TreeNode{Lo: i, Hi: j}
		if i == j {
			return n
		}
		k := t.Split[i][j]
		n.Left = rec(i, k)
		n.Right = rec(k+1, j)
		return n
	}
	return rec(0, t.N-1)
}
