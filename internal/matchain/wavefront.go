package matchain

import (
	"fmt"
	"math"
	"sync"
)

// Wavefront computes the DP table diagonal by diagonal with the
// subproblems of each size evaluated concurrently on worker goroutines —
// the software analogue of the Guibas-Kung-Thompson triangular array, in
// which the wavefront of size-s subproblems is one hardware diagonal. The
// result matches DP exactly; the number of sequential waves is n-1, the
// linear-time shape of Propositions 2-3.
func Wavefront(dims []int, workers int) (*Table, error) {
	n, err := validDims(dims)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("matchain: need workers >= 1, have %d", workers)
	}
	t := &Table{N: n, Dims: append([]int(nil), dims...)}
	t.Cost = make([][]float64, n)
	t.Split = make([][]int, n)
	for i := range t.Cost {
		t.Cost[i] = make([]float64, n)
		t.Split[i] = make([]int, n)
		for j := range t.Split[i] {
			t.Split[i][j] = -1
		}
	}
	for s := 2; s <= n; s++ {
		starts := n - s + 1 // subproblems on this diagonal
		var wg sync.WaitGroup
		chunk := (starts + workers - 1) / workers
		for w := 0; w*chunk < starts; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > starts {
				hi = starts
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					j := i + s - 1
					best, arg := math.Inf(1), -1
					for k := i; k < j; k++ {
						c := t.Cost[i][k] + t.Cost[k+1][j] + float64(dims[i]*dims[k+1]*dims[j+1])
						if c < best {
							best, arg = c, k
						}
					}
					t.Cost[i][j] = best
					t.Split[i][j] = arg
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	return t, nil
}
