package matchain

// The zero-allocation flat matrix-chain kernel. DP's [][]-of-rows tables
// cost one allocation per row and an indirection per cell read; the hot
// inner loop also walks Cost[k+1][j] down a column, a stride-n access
// pattern on row-major storage. Flat fixes both: Cost, its transpose
// CostT, and Split live in three flat arrays grown in place, so the
// k-scan of cell (i, j) reads row i of Cost and column j of CostT, both
// stride-1, and a reused Flat performs no allocations at all.
//
// Every cell evaluates EXACTLY DP's float64 expression — the additive
// constant keeps the single-rounding int product float64(d_i*d_{k+1}*
// d_{j+1}), the k scan order and the strict-< argmin are unchanged — so
// Cost and Split are bitwise identical to DP. The differential checker
// pins this per cell.

import (
	"fmt"
	"math"
	"strings"

	"systolicdp/internal/arena"
)

// Flat is the flat-storage DP table of equation (6): cell (i, j) of the
// n×n triangle lives at Cost[i*n+j], its mirror at CostT[j*n+i], and the
// optimal split at Split[i*n+j]. Cells below the diagonal are unused and
// hold garbage after reuse; the diagonal is zero cost, split -1.
type Flat struct {
	N     int
	Dims  []int
	Cost  []float64
	CostT []float64
	Split []int
}

// Solve fills the table for dims in place, growing the backing arrays
// only when the chain outgrows their capacity — a reused same-size Flat
// allocates nothing. Bitwise identical to DP.
func (f *Flat) Solve(dims []int) error {
	n, err := validDims(dims)
	if err != nil {
		return err
	}
	f.N = n
	f.Dims = arena.Ints(f.Dims, len(dims))
	copy(f.Dims, dims)
	f.Cost = arena.Floats(f.Cost, n*n)
	f.CostT = arena.Floats(f.CostT, n*n)
	f.Split = arena.Ints(f.Split, n*n)
	for i := 0; i < n; i++ {
		f.Cost[i*n+i] = 0
		f.CostT[i*n+i] = 0
		f.Split[i*n+i] = -1
	}
	for s := 2; s <= n; s++ {
		for i := 0; i+s-1 < n; i++ {
			j := i + s - 1
			best, arg := math.Inf(1), -1
			rowI := f.Cost[i*n : i*n+n]  // rowI[k] = Cost[i][k]
			colJ := f.CostT[j*n : j*n+n] // colJ[k] = Cost[k][j]
			di, dj1 := dims[i], dims[j+1]
			for k := i; k < j; k++ {
				c := rowI[k] + colJ[k+1] + float64(di*dims[k+1]*dj1)
				if c < best {
					best, arg = c, k
				}
			}
			f.Cost[i*n+j] = best
			f.CostT[j*n+i] = best
			f.Split[i*n+j] = arg
		}
	}
	return nil
}

// DPFlat solves equation (6) into a fresh flat table: the allocating
// entry point (the differential checker's handle on the kernel).
func DPFlat(dims []int) (*Flat, error) {
	f := new(Flat)
	if err := f.Solve(dims); err != nil {
		return nil, err
	}
	return f, nil
}

// OptimalCost returns m_{1,N}, the cost of the best ordering.
func (f *Flat) OptimalCost() float64 { return f.Cost[f.N-1] }

// Parenthesization renders the optimal order exactly like
// Table.Parenthesization, e.g. "((M1 M2)(M3 M4))".
func (f *Flat) Parenthesization() string {
	n := f.N
	var b strings.Builder
	var rec func(i, j int)
	rec = func(i, j int) {
		if i == j {
			fmt.Fprintf(&b, "M%d", i+1)
			return
		}
		k := f.Split[i*n+j]
		b.WriteByte('(')
		rec(i, k)
		b.WriteByte(' ')
		rec(k+1, j)
		b.WriteByte(')')
	}
	rec(0, n-1)
	return b.String()
}

type flatKey struct{ n int }

var flatPool = arena.NewKeyed[flatKey](func() *Flat { return new(Flat) })

// SolveFast solves one chain on a pooled flat table and returns the
// optimal cost and parenthesization — the serving path's single-solve
// kernel. Only the returned string allocates on a warm same-size pool.
func SolveFast(dims []int) (cost float64, paren string, err error) {
	n, err := validDims(dims)
	if err != nil {
		return 0, "", err
	}
	key := flatKey{n}
	f := flatPool.Get(key)
	if err := f.Solve(dims); err != nil {
		return 0, "", err
	}
	cost = f.OptimalCost()
	paren = f.Parenthesization()
	flatPool.Put(key, f) // clean completion only (arena discipline)
	return cost, paren, nil
}

// WavefrontBatchFast solves B same-length chains on one pooled flat
// table and returns per-instance costs and parenthesizations. It
// validates and prices exactly like WavefrontBatch — same error
// messages, same streamed-wavefront cycle model B·(n−1) + (n−1) — and
// each instance's table is bitwise identical to DP (instances are
// independent, so the interleaving order WavefrontBatch uses and the
// per-instance order here compute identical cells).
func WavefrontBatchFast(dimsList [][]int) (costs []float64, parens []string, cycles int, err error) {
	costs = make([]float64, len(dimsList))
	parens = make([]string, len(dimsList))
	cycles, err = WavefrontBatchFastInto(costs, parens, dimsList)
	if err != nil {
		return nil, nil, 0, err
	}
	return costs, parens, cycles, nil
}

// WavefrontBatchFastInto is WavefrontBatchFast writing into caller-owned
// slices (parens may be nil to skip rendering; len(costs) must equal the
// batch size) for allocation-free steady-state batches.
func WavefrontBatchFastInto(costs []float64, parens []string, dimsList [][]int) (cycles int, err error) {
	if len(dimsList) == 0 {
		return 0, fmt.Errorf("matchain: empty batch")
	}
	if len(costs) != len(dimsList) {
		return 0, fmt.Errorf("matchain: costs length %d != batch size %d", len(costs), len(dimsList))
	}
	b := len(dimsList)
	var n int
	for q, dims := range dimsList {
		nq, err := validDims(dims)
		if err != nil {
			return 0, fmt.Errorf("matchain: batch instance %d: %v", q, err)
		}
		if q == 0 {
			n = nq
		} else if nq != n {
			return 0, fmt.Errorf("matchain: batch instance %d has n=%d, batch shape is n=%d", q, nq, n)
		}
	}
	key := flatKey{n}
	f := flatPool.Get(key)
	for q, dims := range dimsList {
		if err := f.Solve(dims); err != nil {
			return 0, fmt.Errorf("matchain: batch instance %d: %v", q, err)
		}
		costs[q] = f.OptimalCost()
		if parens != nil {
			parens[q] = f.Parenthesization()
		}
	}
	flatPool.Put(key, f) // clean completion only
	if n < 2 {
		// A single-matrix chain has no waves; the model still charges one
		// cycle per instance for the trivial answer (as WavefrontBatch).
		return b, nil
	}
	return b*(n-1) + (n - 1), nil
}
