package tile

import (
	"sync"
	"sync/atomic"
	"testing"
)

type countJob struct {
	hits []atomic.Int64
}

func (j *countJob) Do(slot, i int) { j.hits[i].Add(1) }

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 17, 256} {
			j := &countJob{hits: make([]atomic.Int64, n)}
			p.Run(n, j)
			for i := range j.hits {
				if got := j.hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

type slotJob struct {
	max  int
	seen []atomic.Int64
}

func (j *slotJob) Do(slot, i int) {
	if slot < 0 || slot >= j.max {
		panic("slot out of range")
	}
	j.seen[slot].Add(1)
}

func TestSlotsStayInRange(t *testing.T) {
	p := NewPool(4)
	j := &slotJob{max: p.Workers(), seen: make([]atomic.Int64, p.Workers())}
	p.Run(1000, j)
	total := int64(0)
	for i := range j.seen {
		total += j.seen[i].Load()
	}
	if total != 1000 {
		t.Fatalf("total Do calls = %d, want 1000", total)
	}
}

type panicJob struct{ at int }

func (j *panicJob) Do(slot, i int) {
	if i == j.at {
		panic("tile kernel failure")
	}
}

// TestRunPropagatesPanic pins the drop-on-panic contract the arena
// workspaces rely on: a panic inside any lane resurfaces on the Run
// caller, after the barrier, so the caller's (non-deferred) pool.Put is
// skipped and the pool is reusable afterwards.
func TestRunPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			p.Run(64, &panicJob{at: 13})
		}()
		// The pool must still work after a panicked sweep.
		j := &countJob{hits: make([]atomic.Int64, 32)}
		p.Run(32, j)
		for i := range j.hits {
			if j.hits[i].Load() != 1 {
				t.Fatalf("workers=%d: pool wedged after panic (index %d)", workers, i)
			}
		}
	}
}

func TestConcurrentRunsSerialize(t *testing.T) {
	p := NewPool(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				j := &countJob{hits: make([]atomic.Int64, 20)}
				p.Run(20, j)
				for i := range j.hits {
					if j.hits[i].Load() != 1 {
						t.Errorf("concurrent Run corrupted a sweep")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestRunAllocsSteadyState(t *testing.T) {
	p := NewPool(2)
	j := &countJob{hits: make([]atomic.Int64, 64)}
	p.Run(64, j) // warm
	allocs := testing.AllocsPerRun(100, func() { p.Run(64, j) })
	if allocs != 0 {
		t.Fatalf("Run allocates %v objects per sweep, want 0", allocs)
	}
}
