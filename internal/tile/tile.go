// Package tile provides the persistent worker pool the cache-tiled DP
// kernels share for wavefront-parallel tile diagonals. One pool of
// GOMAXPROCS workers serves every kernel in the process (the software
// analogue of the paper's fixed PE array: the compute fabric is a
// resident resource the problems stream through, not a per-request
// spawn).
//
// Run dispatches a Job's indices across the workers and barriers until
// all complete — one tile anti-diagonal per Run call. The Job interface
// (rather than a closure parameter) exists for the zero-allocation hot
// path: kernels keep a reusable job struct in their pooled workspace, so
// a steady-state solve performs no per-diagonal allocations. A panic in
// any Do call aborts the remaining indices and re-panics on the Run
// caller's goroutine, preserving the kernels' drop-on-panic workspace
// discipline (see internal/arena).
package tile

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one parallel sweep: Do is invoked once per index i in [0, n),
// concurrently, with slot identifying which worker lane (0..Workers()-1)
// is calling — kernels use the slot to pick a private scratch buffer.
type Job interface {
	Do(slot, i int)
}

// Pool is a fixed set of persistent workers with barrier semantics.
// A Pool is safe for concurrent Run calls (they serialize internally);
// the zero-size sequential case bypasses the workers entirely.
type Pool struct {
	workers int

	mu    sync.Mutex // serializes Run: one sweep owns the workers at a time
	job   Job
	n     int
	next  atomic.Int64
	start []chan struct{}
	wg    sync.WaitGroup

	panicMu  sync.Mutex
	panicVal any
}

// NewPool builds a pool of the given width; workers < 1 is clamped to 1.
// A width-1 pool spawns no goroutines: Run degrades to an inline loop.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	// The Run caller participates as the last slot, so only workers-1
	// helper goroutines are needed.
	p.start = make([]chan struct{}, workers-1)
	for w := range p.start {
		p.start[w] = make(chan struct{}, 1)
		go p.helper(w)
	}
	return p
}

// Workers reports the pool width (parallel lanes available to Run).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

func (p *Pool) helper(slot int) {
	for range p.start[slot] {
		p.drain(slot)
		p.wg.Done()
	}
}

// drain grabs indices until the counter passes n, recovering a panic by
// recording it and cancelling the remaining indices.
func (p *Pool) drain(slot int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
			p.next.Store(int64(p.n)) // abort the sweep for the other lanes
		}
	}()
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.job.Do(slot, i)
	}
}

// Run invokes j.Do for every index in [0, n) and returns when all calls
// have completed. With one index, one worker, or a nil pool it runs
// inline on the caller (slot 0) with no synchronization. If any Do
// panics, Run panics with the first recovered value after the barrier.
func (p *Pool) Run(n int, j Job) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			j.Do(0, i)
		}
		return
	}
	p.mu.Lock()
	p.job, p.n = j, n
	p.next.Store(0)
	p.panicVal = nil
	p.wg.Add(len(p.start))
	for _, c := range p.start {
		c <- struct{}{}
	}
	p.drain(p.workers - 1) // the caller is the last lane
	p.wg.Wait()
	pv := p.panicVal
	p.job = nil
	p.mu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, sized to GOMAXPROCS at first
// use. On a single-vCPU host this is a width-1 pool and every kernel
// sweep stays inline — the tiling then buys cache locality alone, which
// is the dominant term anyway (see docs/tiling.md).
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}
