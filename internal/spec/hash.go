package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns a normalized copy of the spec suitable for hashing:
// only the fields relevant to the problem kind are kept, and defaulted
// cost names are made explicit. Two specs that Build the same problem —
// e.g. a nodevalued spec with and without the implicit "absdiff" cost, or
// a chain spec carrying a stray values field — canonicalize identically.
func (f *File) Canonical() *File {
	c := &File{Problem: f.Problem}
	switch f.Problem {
	case "graph":
		c.Design = f.Design
		c.Costs = f.Costs
	case "nodevalued":
		c.Values = f.Values
		c.Cost = f.Cost
		if c.Cost == "" {
			c.Cost = "absdiff"
		}
	case "chain":
		c.Dims = f.Dims
	case "nonserial":
		c.Domains = f.Domains
		c.Cost = f.Cost
		if c.Cost == "" {
			c.Cost = "default"
		}
	case "dtw":
		c.X = f.X
		c.Y = f.Y
	default:
		// Unknown kinds keep everything so distinct inputs stay distinct.
		cc := *f
		c = &cc
	}
	return c
}

// Hash returns the canonical cache key for the spec: the hex SHA-256 of
// the compact JSON encoding of Canonical(). Marshal determinism (stable
// field order, stable float formatting) makes this a function of the
// problem the spec describes rather than of its textual formatting.
func (f *File) Hash() (string, error) {
	data, err := json.Marshal(f.Canonical())
	if err != nil {
		return "", fmt.Errorf("spec: hash: %v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
