// Package spec parses JSON problem specifications for the dpsolve CLI,
// covering the four formulation classes of the paper. A spec names its
// problem kind and supplies the data; named cost functions stand in for
// the paper's f and g functions.
//
// Examples:
//
//	{"problem":"graph","design":1,
//	 "costs":[[[1,2,3]],[[4,5,6],[7,8,9],[1,1,1]],[[2],[3],[4]]]}
//
//	{"problem":"nodevalued",
//	 "values":[[10,20,30],[15,25,35],[5,10,15]],"cost":"absdiff"}
//
//	{"problem":"chain","dims":[30,35,15,5,10,20,25]}
//
//	{"problem":"nonserial","domains":[[1,2],[1,2],[1,2],[1,2]],"cost":"span"}
//
//	{"problem":"dtw","x":[0,1,2,3],"y":[0,1,1,2,3]}
package spec

import (
	"encoding/json"
	"fmt"

	"systolicdp/internal/align"
	"systolicdp/internal/core"
	"systolicdp/internal/knapsack"
	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/viterbi"
)

// File is the JSON shape of a problem specification. Field order here is
// the wire order: Marshal emits struct fields in declaration order, so the
// encoding is deterministic — a property the serving cache key (see Hash)
// depends on.
type File struct {
	Problem string        `json:"problem"`
	Design  int           `json:"design,omitempty"`
	Costs   [][][]float64 `json:"costs,omitempty"`   // graph: one matrix per stage transition
	Values  [][]float64   `json:"values,omitempty"`  // nodevalued: stage values
	Cost    string        `json:"cost,omitempty"`    // named cost function
	Dims    []int         `json:"dims,omitempty"`    // chain ordering
	Domains [][]float64   `json:"domains,omitempty"` // nonserial chain
	X       []float64     `json:"x,omitempty"`       // dtw/align: query series
	Y       []float64     `json:"y,omitempty"`       // dtw/align: template series
	// New kinds append fields here: wire order is declaration order and
	// the serving cache hash depends on it, so the seed kinds' encodings
	// must never shift.
	GapOpen   float64   `json:"gapopen,omitempty"` // align: affine gap opening penalty
	GapExtend float64   `json:"gapext,omitempty"`  // align: affine gap extension penalty
	Proc      []int     `json:"proc,omitempty"`    // knapsack: processing times
	Due       []int     `json:"due,omitempty"`     // knapsack: due dates
	Weights   []float64 `json:"weights,omitempty"` // knapsack: late weights
}

// PairCosts maps cost-function names to binary cost functions for
// node-valued problems.
func PairCosts() map[string]multistage.CostFunc {
	return map[string]multistage.CostFunc{
		"absdiff":   multistage.AbsDiff,
		"quadratic": func(x, y float64) float64 { return (x - y) * (x - y) },
		"rise": func(x, y float64) float64 {
			if y < x {
				return 5 * (x - y)
			}
			return y - x
		},
	}
}

// TernaryCosts maps names to ternary cost functions for nonserial chains.
func TernaryCosts() map[string]func(a, b, c float64) float64 {
	return map[string]func(a, b, c float64) float64{
		nonserial.GNameDefault: nonserial.DefaultG,
		nonserial.GNameSpan:    nonserial.SpanG,
	}
}

// Parse decodes a spec and builds the corresponding core problem.
func Parse(data []byte) (core.Problem, error) {
	f, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return f.Build()
}

// Decode unmarshals a spec File without building the problem. Useful when
// the caller needs the File itself (e.g. to Hash it for a cache key).
// Every decoded File is validated: NaN/±Inf weights and absurd
// dimensions are rejected here, before they can flow into semiring
// comparisons or array sizing.
func Decode(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Build constructs the core problem the spec describes.
func (f *File) Build() (core.Problem, error) {
	switch f.Problem {
	case "graph":
		if len(f.Costs) == 0 {
			return nil, fmt.Errorf("spec: graph problem needs costs")
		}
		g := &multistage.Graph{}
		for si, rows := range f.Costs {
			if len(rows) == 0 {
				return nil, fmt.Errorf("spec: stage %d has no rows", si)
			}
			for ri, r := range rows {
				if len(r) != len(rows[0]) {
					return nil, fmt.Errorf("spec: stage %d row %d has %d entries, want %d", si, ri, len(r), len(rows[0]))
				}
			}
			m := matrix.FromRows(rows)
			g.Cost = append(g.Cost, m)
			if si == 0 {
				g.StageSizes = append(g.StageSizes, m.Rows)
			}
			g.StageSizes = append(g.StageSizes, m.Cols)
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.MultistageProblem{Graph: g, Design: f.Design}, nil

	case "nodevalued":
		name := f.Cost
		if name == "" {
			name = "absdiff"
		}
		cf, ok := PairCosts()[name]
		if !ok {
			return nil, fmt.Errorf("spec: unknown pair cost %q", name)
		}
		p := &multistage.NodeValued{Values: f.Values, F: cf}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.NodeValuedProblem{Problem: p}, nil

	case "chain":
		if len(f.Dims) < 2 {
			return nil, fmt.Errorf("spec: chain needs at least 2 dims")
		}
		return &core.ChainOrderingProblem{Dims: f.Dims}, nil

	case "nonserial":
		name := f.Cost
		if name == "" {
			name = "default"
		}
		g, ok := TernaryCosts()[name]
		if !ok {
			return nil, fmt.Errorf("spec: unknown ternary cost %q", name)
		}
		// GName carries the spec's cost name into the chain so the
		// monomorphized kernel can dispatch to the inlinable op.
		c := &nonserial.Chain3{Domains: f.Domains, G: g, GName: name}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.NonserialChainProblem{Chain: c}, nil

	case "dtw":
		if len(f.X) == 0 || len(f.Y) == 0 {
			return nil, fmt.Errorf("spec: dtw needs non-empty x and y series")
		}
		return &core.DTWProblem{X: f.X, Y: f.Y}, nil

	case "align":
		// Unlike dtw, empty series are legal: the affine-gap lattice
		// includes the empty row/column, so align("", y) is a gap run.
		p := align.Params{Open: f.GapOpen, Ext: f.GapExtend}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.AlignProblem{X: f.X, Y: f.Y, Params: p}, nil

	case "viterbi":
		// Reuses the wire fields of the node-valued and graph kinds:
		// Values[k] holds stage-k node costs, Costs[k] the k->k+1
		// transition matrix.
		t := &viterbi.Trellis{Node: f.Values, Trans: f.Costs}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.ViterbiProblem{Trellis: t}, nil

	case "knapsack":
		if len(f.Proc) != len(f.Due) || len(f.Proc) != len(f.Weights) {
			return nil, fmt.Errorf("spec: knapsack needs equal-length proc/due/weights, have %d/%d/%d",
				len(f.Proc), len(f.Due), len(f.Weights))
		}
		jobs := make([]knapsack.Job, len(f.Proc))
		for i := range jobs {
			jobs[i] = knapsack.Job{P: f.Proc[i], D: f.Due[i], W: f.Weights[i]}
		}
		if err := knapsack.Validate(jobs); err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		return &core.KnapsackProblem{Jobs: jobs}, nil

	default:
		return nil, fmt.Errorf("spec: unknown problem kind %q", f.Problem)
	}
}

// FromGraph encodes an explicit multistage graph problem as a spec File.
func FromGraph(g *multistage.Graph, design int) (*File, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f := &File{Problem: "graph", Design: design}
	for _, c := range g.Cost {
		rows := make([][]float64, c.Rows)
		for i := 0; i < c.Rows; i++ {
			rows[i] = c.Row(i)
		}
		f.Costs = append(f.Costs, rows)
	}
	return f, nil
}

// FromChain encodes a matrix-chain ordering problem as a spec File.
func FromChain(dims []int) *File {
	return &File{Problem: "chain", Dims: append([]int(nil), dims...)}
}

// Marshal renders a spec File as indented JSON. The output is
// deterministic: encoding/json emits struct fields in declaration order
// and float64 formatting is stable, so identical Files always produce
// identical bytes (Parse → Marshal → Parse is a fixed point).
func (f *File) Marshal() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
