package spec

import (
	"math"
	"strings"
	"testing"
)

// Regression: Decode used to accept any well-formed JSON — zero,
// negative, and absurd dimensions flowed straight into solvers, and
// programmatically-built Files could carry NaN/±Inf into (MIN,+)
// comparisons where NaN poisons every min. These must now fail fast
// with a clear message.
func TestDecodeRejectsAbsurdDims(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"zero-dim", `{"problem":"chain","dims":[0,5]}`, "dims[0]"},
		{"negative-dim", `{"problem":"chain","dims":[-3,5,7]}`, "dims[0]"},
		{"huge-dim", `{"problem":"chain","dims":[2000000,5]}`, "dims[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if err == nil {
				t.Fatalf("Decode(%s) = nil error, want rejection", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Decode(%s) error %q, want mention of %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestValidateRejectsNonFiniteWeights(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		f    File
		want string
	}{
		{"costs-nan", File{Problem: "graph", Costs: [][][]float64{{{1, nan}}}}, "costs[0][0][1]"},
		{"costs-inf", File{Problem: "graph", Costs: [][][]float64{{{1}}, {{-inf}}}}, "costs[1][0][0]"},
		{"values-nan", File{Problem: "nodevalued", Values: [][]float64{{1}, {nan}}}, "values[1][0]"},
		{"domains-inf", File{Problem: "nonserial", Domains: [][]float64{{inf}, {1}, {2}}}, "domains[0][0]"},
		{"x-nan", File{Problem: "dtw", X: []float64{nan}, Y: []float64{0}}, "x[0]"},
		{"y-inf", File{Problem: "dtw", X: []float64{0}, Y: []float64{0, inf}}, "y[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want rejection")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() error %q, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsOversizedShapes(t *testing.T) {
	bigRow := make([]float64, MaxSpecNodes+1)
	manyDims := make([]int, MaxSpecChainLen+1)
	for i := range manyDims {
		manyDims[i] = 1
	}
	longSeries := make([]float64, MaxSpecSeries+1)
	cases := []struct {
		name string
		f    File
	}{
		{"wide-stage", File{Problem: "graph", Costs: [][][]float64{{bigRow}}}},
		{"many-dims", File{Problem: "chain", Dims: manyDims}},
		{"long-series", File{Problem: "dtw", X: longSeries, Y: []float64{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f.Validate(); err == nil {
				t.Fatal("Validate() = nil, want rejection")
			}
		})
	}
}

func TestValidateAcceptsNormalSpecs(t *testing.T) {
	ok := []string{
		`{"problem":"graph","design":1,"costs":[[[1,2]],[[3],[4]]]}`,
		`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`,
		`{"problem":"dtw","x":[0,1,2,3],"y":[0,1,1,2,3]}`,
		`{"problem":"nodevalued","values":[[10,20],[15,25]],"cost":"absdiff"}`,
		`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2]],"cost":"span"}`,
	}
	for _, in := range ok {
		f, err := Decode([]byte(in))
		if err != nil {
			t.Fatalf("Decode(%s): %v", in, err)
		}
		if _, err := f.Build(); err != nil {
			t.Fatalf("Build(%s): %v", in, err)
		}
	}
}
