package spec

import (
	"bytes"
	"testing"
)

// Parse → Marshal → Parse must be a fixed point: re-decoding the marshaled
// form and marshaling again yields identical bytes, and both decode to
// specs with equal hashes. This is what the serving cache key relies on.
func TestMarshalRoundTripDeterministic(t *testing.T) {
	inputs := []string{
		`{"problem":"graph","design":1,"costs":[[[1,2,3]],[[4,5,6],[7,8,9],[1,1,1]],[[2],[3],[4]]]}`,
		`{"problem":"nodevalued","values":[[0,10],[5,20],[5,0]],"cost":"absdiff"}`,
		`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`,
		`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2],[1,2]],"cost":"span"}`,
		`{"problem":"dtw","x":[0,1,2.5,3],"y":[0,1,1,2,3]}`,
	}
	for _, in := range inputs {
		f, err := Decode([]byte(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		m1, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decode(m1)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		m2, err := g.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Errorf("%s: marshal not a fixed point:\n%s\nvs\n%s", in, m1, m2)
		}
		h1, err := f.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := g.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash changed across round trip: %s vs %s", in, h1, h2)
		}
	}
}

// Marshal must be byte-stable across repeated calls on the same File.
func TestMarshalRepeatable(t *testing.T) {
	f := &File{Problem: "chain", Dims: []int{3, 7, 2, 9}}
	a, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("marshal unstable:\n%s\nvs\n%s", a, b)
	}
}

// Semantically identical specs hash identically; different problems don't.
func TestHashCanonicalization(t *testing.T) {
	// Implicit vs explicit default cost name.
	a, _ := Decode([]byte(`{"problem":"nodevalued","values":[[0,1],[2,3]]}`))
	b, _ := Decode([]byte(`{"problem":"nodevalued","values":[[0,1],[2,3]],"cost":"absdiff"}`))
	// A stray irrelevant field must not perturb the key.
	c, _ := Decode([]byte(`{"problem":"chain","dims":[2,3,4],"cost":"absdiff"}`))
	d, _ := Decode([]byte(`{"problem":"chain","dims":[2,3,4]}`))
	e, _ := Decode([]byte(`{"problem":"chain","dims":[2,3,5]}`))

	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Errorf("default cost should canonicalize: %s vs %s", ha, hb)
	}
	hc, _ := c.Hash()
	hd, _ := d.Hash()
	he, _ := e.Hash()
	if hc != hd {
		t.Errorf("irrelevant field should not change hash: %s vs %s", hc, hd)
	}
	if hd == he {
		t.Errorf("different dims must hash differently")
	}
	if ha == hd {
		t.Errorf("different problems must hash differently")
	}
}
