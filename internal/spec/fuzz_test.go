package spec

import (
	"testing"

	"systolicdp/internal/core"
)

// FuzzParse feeds arbitrary bytes to the spec parser; it must never panic,
// and any spec it accepts must be solvable without error.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	f.Add([]byte(`{"problem":"graph","design":1,"costs":[[[1,2]],[[3],[4]]]}`))
	f.Add([]byte(`{"problem":"nodevalued","values":[[1,2],[3,4]],"cost":"absdiff"}`))
	f.Add([]byte(`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2]],"cost":"span"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"problem":"graph","costs":[[[1e308,2]],[[3],[4]]]}`))
	// Shapes Decode must reject: zero/negative/absurd dimensions and
	// out-of-range weights (JSON itself cannot carry NaN/Inf literals, so
	// 1e999 and friends arrive as unmarshal errors; the dims checks are
	// the wire-reachable half of Validate).
	f.Add([]byte(`{"problem":"chain","dims":[0,5]}`))
	f.Add([]byte(`{"problem":"chain","dims":[-3,5,7]}`))
	f.Add([]byte(`{"problem":"chain","dims":[2000000,5]}`))
	f.Add([]byte(`{"problem":"dtw","x":[1e999],"y":[0]}`))
	f.Add([]byte(`{"problem":"graph","costs":[[[1e999]]]}`))
	f.Add([]byte(`{"problem":"nodevalued","values":[[-1e999],[2]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted specs must solve cleanly. Cap sizes to keep the fuzz
		// loop fast: Validate imposes wire-level limits, but they are far
		// above what a fuzz iteration should execute.
		switch q := p.(type) {
		case *core.ChainOrderingProblem:
			if len(q.Dims) > 40 {
				return
			}
		case *core.NonserialChainProblem:
			total := 1
			for _, d := range q.Chain.Domains {
				total *= len(d)
				if total > 1<<12 {
					return
				}
			}
		case *core.MultistageProblem:
			n := 0
			for _, sz := range q.Graph.StageSizes {
				n += sz
			}
			if n > 200 {
				return
			}
		case *core.NodeValuedProblem:
			n := 0
			for _, vs := range q.Problem.Values {
				n += len(vs)
			}
			if n > 200 {
				return
			}
		}
		if _, err := core.Solve(p); err != nil {
			t.Fatalf("accepted spec failed to solve: %v\n%s", err, data)
		}
	})
}
