package spec

import (
	"testing"

	"systolicdp/internal/core"
)

// FuzzParse feeds arbitrary bytes to the spec parser; it must never panic,
// and any spec it accepts must be solvable without error.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	f.Add([]byte(`{"problem":"graph","design":1,"costs":[[[1,2]],[[3],[4]]]}`))
	f.Add([]byte(`{"problem":"nodevalued","values":[[1,2],[3,4]],"cost":"absdiff"}`))
	f.Add([]byte(`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2]],"cost":"span"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"problem":"graph","costs":[[[1e308,2]],[[3],[4]]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted specs must solve cleanly. Cap sizes to keep the fuzz
		// loop fast: the parser itself imposes no limits.
		switch q := p.(type) {
		case *core.ChainOrderingProblem:
			if len(q.Dims) > 40 {
				return
			}
		case *core.NonserialChainProblem:
			total := 1
			for _, d := range q.Chain.Domains {
				total *= len(d)
				if total > 1<<12 {
					return
				}
			}
		case *core.MultistageProblem:
			n := 0
			for _, sz := range q.Graph.StageSizes {
				n += sz
			}
			if n > 200 {
				return
			}
		case *core.NodeValuedProblem:
			n := 0
			for _, vs := range q.Problem.Values {
				n += len(vs)
			}
			if n > 200 {
				return
			}
		}
		if _, err := core.Solve(p); err != nil {
			t.Fatalf("accepted spec failed to solve: %v\n%s", err, data)
		}
	})
}
