package spec

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func TestParseGraphAndSolve(t *testing.T) {
	data := []byte(`{"problem":"graph","design":1,
		"costs":[[[1,2,3]],[[4,5,6],[7,8,9],[1,1,1]],[[2],[3],[4]]]}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Shortest: 1 -> row0 ... enumerate: paths s->i->j->t with costs
	// c1[i] + c2[i][j] + c3[j]. Minimum is 3 + 1 + 2 = 6 (i=2, j=0).
	if math.Abs(sol.Cost-6) > 1e-9 {
		t.Errorf("cost %v, want 6", sol.Cost)
	}
	if sol.Class.String() != "monadic-serial" {
		t.Errorf("class %v", sol.Class)
	}
}

func TestParseNodeValued(t *testing.T) {
	data := []byte(`{"problem":"nodevalued","values":[[0,10],[5,20],[5,0]],"cost":"absdiff"}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Best assignment: 0 -> 5 -> 5 = 5 + 0 = 5? and 10->5->5 = 5; also
	// 0->5->5: |0-5|+|5-5| = 5. Verify value.
	if math.Abs(sol.Cost-5) > 1e-9 {
		t.Errorf("cost %v, want 5", sol.Cost)
	}
}

func TestParseNodeValuedDefaultsAndNamedCosts(t *testing.T) {
	for name := range PairCosts() {
		data := []byte(`{"problem":"nodevalued","values":[[1,2],[3,4]],"cost":"` + name + `"}`)
		if _, err := Parse(data); err != nil {
			t.Errorf("cost %q rejected: %v", name, err)
		}
	}
	if _, err := Parse([]byte(`{"problem":"nodevalued","values":[[1],[2]]}`)); err != nil {
		t.Errorf("default cost rejected: %v", err)
	}
	if _, err := Parse([]byte(`{"problem":"nodevalued","values":[[1],[2]],"cost":"nope"}`)); err == nil {
		t.Error("unknown cost accepted")
	}
}

func TestParseChain(t *testing.T) {
	p, err := Parse([]byte(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 15125 {
		t.Errorf("cost %v, want 15125", sol.Cost)
	}
}

func TestParseNonserial(t *testing.T) {
	for name := range TernaryCosts() {
		data := []byte(`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2],[1,2]],"cost":"` + name + `"}`)
		p, err := Parse(data)
		if err != nil {
			t.Fatalf("cost %q: %v", name, err)
		}
		if _, err := core.Solve(p); err != nil {
			t.Fatalf("cost %q solve: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"problem":"martian"}`),
		[]byte(`{"problem":"graph"}`),
		[]byte(`{"problem":"graph","costs":[[]]}`),
		[]byte(`{"problem":"graph","costs":[[[1,2]],[[1],[2],[3]]]}`), // shape mismatch
		[]byte(`{"problem":"chain","dims":[5]}`),
		[]byte(`{"problem":"nonserial","domains":[[1]]}`),
		[]byte(`{"problem":"nonserial","domains":[[1],[2],[3]],"cost":"nope"}`),
		[]byte(`{"problem":"nodevalued","values":[[1]]}`),
	}
	for i, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("bad spec %d accepted: %s", i, b)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inner := multistage.RandomUniform(rng, 4, 3, 1, 10)
	g := multistage.SingleSourceSink(semiring.MinPlus{}, inner)
	f, err := FromGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := multistage.SolveOptimal(semiring.MinPlus{}, g)
	if math.Abs(sol.Cost-want.Cost) > 1e-9 {
		t.Errorf("round-trip cost %v, want %v", sol.Cost, want.Cost)
	}
}

func TestChainRoundTrip(t *testing.T) {
	f := FromChain([]int{30, 35, 15, 5, 10, 20, 25})
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 15125 {
		t.Errorf("round-trip cost %v", sol.Cost)
	}
}

func TestFromGraphRejectsInvalid(t *testing.T) {
	if _, err := FromGraph(&multistage.Graph{StageSizes: []int{1}}, 0); err == nil {
		t.Error("invalid graph accepted")
	}
}
