package spec

import (
	"fmt"
	"math"
)

// Wire-level sanity limits enforced at Decode time, before any weight
// reaches a (MIN,+)/(MAX,+) comparison or a solver sizes an array from
// attacker-controlled dimensions. They are far above anything the
// engines handle in practice but small enough that a hostile spec cannot
// request absurd allocations.
const (
	MaxSpecStages   = 4096    // stage matrices / value rows / domains
	MaxSpecNodes    = 4096    // nodes (columns) per stage
	MaxSpecSeries   = 1 << 20 // dtw series length
	MaxSpecChainLen = 4096    // entries of a chain-ordering dims vector
	MaxSpecDim      = 1 << 20 // a single matrix dimension in a chain
	MaxSpecElems    = 1 << 24 // total numeric payload across all fields
	MaxSpecJobs     = 4096    // knapsack jobs
	MaxSpecHorizon  = 1 << 20 // a knapsack due date (bounds the DP row)
)

// Validate rejects NaN/±Inf weights and absurd dimensions. Decode calls
// it on every wire payload, so a bad spec fails with a clear 400-class
// error instead of flowing into semiring comparisons (where NaN poisons
// every min/max) or into array sizing.
func (f *File) Validate() error {
	elems := 0
	count := func(n int) error {
		elems += n
		if elems > MaxSpecElems {
			return fmt.Errorf("spec: payload exceeds %d numeric entries", MaxSpecElems)
		}
		return nil
	}

	if len(f.Costs) > MaxSpecStages {
		return fmt.Errorf("spec: costs has %d stage matrices, max %d", len(f.Costs), MaxSpecStages)
	}
	for si, rows := range f.Costs {
		if len(rows) > MaxSpecNodes {
			return fmt.Errorf("spec: costs[%d] has %d rows, max %d", si, len(rows), MaxSpecNodes)
		}
		for ri, row := range rows {
			if len(row) > MaxSpecNodes {
				return fmt.Errorf("spec: costs[%d][%d] has %d entries, max %d", si, ri, len(row), MaxSpecNodes)
			}
			if err := count(len(row)); err != nil {
				return err
			}
			for ci, w := range row {
				if !finite(w) {
					return fmt.Errorf("spec: costs[%d][%d][%d]: non-finite weight %v", si, ri, ci, w)
				}
			}
		}
	}

	if len(f.Values) > MaxSpecStages {
		return fmt.Errorf("spec: values has %d stages, max %d", len(f.Values), MaxSpecStages)
	}
	for si, row := range f.Values {
		if len(row) > MaxSpecNodes {
			return fmt.Errorf("spec: values[%d] has %d entries, max %d", si, len(row), MaxSpecNodes)
		}
		if err := count(len(row)); err != nil {
			return err
		}
		for vi, w := range row {
			if !finite(w) {
				return fmt.Errorf("spec: values[%d][%d]: non-finite value %v", si, vi, w)
			}
		}
	}

	if len(f.Domains) > MaxSpecStages {
		return fmt.Errorf("spec: domains has %d variables, max %d", len(f.Domains), MaxSpecStages)
	}
	for di, dom := range f.Domains {
		if len(dom) > MaxSpecNodes {
			return fmt.Errorf("spec: domains[%d] has %d entries, max %d", di, len(dom), MaxSpecNodes)
		}
		if err := count(len(dom)); err != nil {
			return err
		}
		for vi, w := range dom {
			if !finite(w) {
				return fmt.Errorf("spec: domains[%d][%d]: non-finite value %v", di, vi, w)
			}
		}
	}

	if len(f.Dims) > MaxSpecChainLen {
		return fmt.Errorf("spec: dims has %d entries, max %d", len(f.Dims), MaxSpecChainLen)
	}
	for i, d := range f.Dims {
		if d < 1 {
			return fmt.Errorf("spec: dims[%d] = %d, must be >= 1", i, d)
		}
		if d > MaxSpecDim {
			return fmt.Errorf("spec: dims[%d] = %d, max %d", i, d, MaxSpecDim)
		}
	}

	for name, xs := range map[string][]float64{"x": f.X, "y": f.Y} {
		if len(xs) > MaxSpecSeries {
			return fmt.Errorf("spec: %s has %d samples, max %d", name, len(xs), MaxSpecSeries)
		}
		if err := count(len(xs)); err != nil {
			return err
		}
		for i, w := range xs {
			if !finite(w) {
				return fmt.Errorf("spec: %s[%d]: non-finite sample %v", name, i, w)
			}
		}
	}

	for name, v := range map[string]float64{"gapopen": f.GapOpen, "gapext": f.GapExtend} {
		if !finite(v) {
			return fmt.Errorf("spec: %s: non-finite penalty %v", name, v)
		}
		if v < 0 {
			return fmt.Errorf("spec: %s: negative penalty %v", name, v)
		}
	}

	for name, n := range map[string]int{"proc": len(f.Proc), "due": len(f.Due), "weights": len(f.Weights)} {
		if n > MaxSpecJobs {
			return fmt.Errorf("spec: %s has %d entries, max %d", name, n, MaxSpecJobs)
		}
	}
	sumProc, maxDue := 0, 0
	for i, p := range f.Proc {
		if p < 0 {
			return fmt.Errorf("spec: proc[%d] = %d, must be >= 0", i, p)
		}
		if p > MaxSpecHorizon {
			return fmt.Errorf("spec: proc[%d] = %d, max %d", i, p, MaxSpecHorizon)
		}
		sumProc += p
	}
	for i, d := range f.Due {
		if d < 0 {
			return fmt.Errorf("spec: due[%d] = %d, must be >= 0", i, d)
		}
		if d > MaxSpecHorizon {
			return fmt.Errorf("spec: due[%d] = %d, max %d", i, d, MaxSpecHorizon)
		}
		if d > maxDue {
			maxDue = d
		}
	}
	if err := count(len(f.Weights)); err != nil {
		return err
	}
	for i, w := range f.Weights {
		if !finite(w) {
			return fmt.Errorf("spec: weights[%d]: non-finite weight %v", i, w)
		}
		if w < 0 {
			return fmt.Errorf("spec: weights[%d]: negative weight %v", i, w)
		}
	}
	// Bound the DP table the Lawler-Moore row implies: n cells per wave
	// over a horizon of min(max due, total work) time units.
	if horizon := min(maxDue, sumProc); len(f.Proc) > 0 && len(f.Proc)*(horizon+1) > MaxSpecElems {
		return fmt.Errorf("spec: knapsack DP table %d x %d exceeds %d cells",
			len(f.Proc), horizon+1, MaxSpecElems)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
