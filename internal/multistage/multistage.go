// Package multistage implements the multistage graphs of Section 1 of the
// paper (Figure 1): directed graphs whose nodes are partitioned into stages
// with edges only between adjacent stages. The shortest-path problem on
// such a graph is the canonical monadic-serial DP problem (equations
// (1)-(2)) and is equivalent to a string of (MIN,+) matrix multiplications
// (equation (8)).
package multistage

import (
	"fmt"
	"math/rand"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// Graph is a multistage graph with len(StageSizes) stages. Cost[k] is the
// StageSizes[k] x StageSizes[k+1] matrix of edge costs from stage k to
// stage k+1; an absent edge is the semiring Zero (+inf for min-cost paths).
type Graph struct {
	StageSizes []int
	Cost       []*matrix.Matrix
}

// Validate checks structural consistency: len(Cost) == len(StageSizes)-1
// and each cost matrix's shape matches the adjacent stage sizes.
func (g *Graph) Validate() error {
	if len(g.StageSizes) < 2 {
		return fmt.Errorf("multistage: need at least 2 stages, have %d", len(g.StageSizes))
	}
	if len(g.Cost) != len(g.StageSizes)-1 {
		return fmt.Errorf("multistage: %d stages need %d cost matrices, have %d",
			len(g.StageSizes), len(g.StageSizes)-1, len(g.Cost))
	}
	for k, c := range g.Cost {
		if c.Rows != g.StageSizes[k] || c.Cols != g.StageSizes[k+1] {
			return fmt.Errorf("multistage: cost[%d] is %dx%d, want %dx%d",
				k, c.Rows, c.Cols, g.StageSizes[k], g.StageSizes[k+1])
		}
	}
	return nil
}

// Stages returns the number of stages.
func (g *Graph) Stages() int { return len(g.StageSizes) }

// Matrices returns the edge-cost matrices of the graph in stage order; this
// is exactly the matrix string of equation (8). The returned slice aliases
// the graph's matrices.
func (g *Graph) Matrices() []*matrix.Matrix { return g.Cost }

// Path is a minimum-cost path through a multistage graph: Nodes[k] is the
// node index chosen in stage k and Cost its total cost.
type Path struct {
	Nodes []int
	Cost  float64
}

// CostOf recomputes the cost of following nodes through g, returning the
// semiring fold of edge costs. It validates the node indices.
func (g *Graph) CostOf(s semiring.Semiring, nodes []int) (float64, error) {
	if len(nodes) != g.Stages() {
		return 0, fmt.Errorf("multistage: path has %d nodes, graph has %d stages", len(nodes), g.Stages())
	}
	for k, n := range nodes {
		if n < 0 || n >= g.StageSizes[k] {
			return 0, fmt.Errorf("multistage: node %d out of range in stage %d", n, k)
		}
	}
	acc := s.One()
	for k := 0; k+1 < len(nodes); k++ {
		acc = s.Mul(acc, g.Cost[k].At(nodes[k], nodes[k+1]))
	}
	return acc, nil
}

// SolveBackward evaluates the backward functional equation (2) of the
// paper: f2(i) = min_j [f2(j) + c_{j,i}], sweeping stages left to right.
// It returns, for each node of the final stage, the optimal cost from any
// node of stage 0, i.e. the vector h(X_N) of equation (13).
func SolveBackward(s semiring.Semiring, g *Graph) []float64 {
	h := make([]float64, g.StageSizes[0])
	for i := range h {
		h[i] = s.One()
	}
	for k := 0; k < len(g.Cost); k++ {
		// h'(j) = Add_i [ h(i) Mul c_k(i,j) ] — a vector-matrix product.
		h = matrix.MulVec(s, g.Cost[k].Transpose(), h)
	}
	return h
}

// SolveForward evaluates the forward functional equation (1):
// f1(i) = min_j [c_{i,j} + f1(j)], sweeping stages right to left. It
// returns, for each node of stage 0, the optimal cost to any node of the
// final stage — the matrix-string evaluation of equation (8c).
func SolveForward(s semiring.Semiring, g *Graph) []float64 {
	f := make([]float64, g.StageSizes[g.Stages()-1])
	for i := range f {
		f[i] = s.One()
	}
	return matrix.ChainVec(s, g.Cost, f)
}

// SolveOptimal returns the overall optimal path value between any node in
// stage 0 and any node in the last stage, together with one optimal path,
// under a comparative semiring. It is the reference ("single processor")
// solver against which every systolic design is checked.
func SolveOptimal(s semiring.Comparative, g *Graph) Path {
	n := g.Stages()
	// f[k][i]: optimal cost from node i of stage k to the end; choice[k][i]
	// records the next-stage node attaining it.
	f := make([]float64, g.StageSizes[n-1])
	for i := range f {
		f[i] = s.One()
	}
	choice := make([][]int, n-1)
	for k := n - 2; k >= 0; k-- {
		var args []int
		f, args = matrix.ArgMulVec(s, g.Cost[k], f)
		choice[k] = args
	}
	best, start := s.Zero(), -1
	for i, v := range f {
		if start == -1 || s.Better(v, best) {
			best, start = v, i
		}
	}
	nodes := make([]int, n)
	nodes[0] = start
	for k := 0; k+1 < n; k++ {
		nodes[k+1] = choice[k][nodes[k]]
	}
	return Path{Nodes: nodes, Cost: best}
}

// BruteForce enumerates every source-to-sink path and returns the optimal
// one. Exponential; used only to validate SolveOptimal on small graphs.
func BruteForce(s semiring.Comparative, g *Graph) Path {
	n := g.Stages()
	best := Path{Cost: s.Zero()}
	nodes := make([]int, n)
	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if k == n {
			if best.Nodes == nil || s.Better(acc, best.Cost) {
				best = Path{Nodes: append([]int(nil), nodes...), Cost: acc}
			}
			return
		}
		for i := 0; i < g.StageSizes[k]; i++ {
			nodes[k] = i
			next := acc
			if k > 0 {
				next = s.Mul(acc, g.Cost[k-1].At(nodes[k-1], i))
			}
			rec(k+1, next)
		}
	}
	rec(0, s.One())
	return best
}

// Random generates a multistage graph with the given stage sizes and edge
// costs drawn uniformly from [lo, hi).
func Random(rng *rand.Rand, stageSizes []int, lo, hi float64) *Graph {
	g := &Graph{StageSizes: append([]int(nil), stageSizes...)}
	for k := 0; k+1 < len(stageSizes); k++ {
		g.Cost = append(g.Cost, matrix.Random(rng, stageSizes[k], stageSizes[k+1], lo, hi))
	}
	return g
}

// RandomUniform generates a graph with n stages of m nodes each — the
// regular shape assumed throughout the paper's analyses.
func RandomUniform(rng *rand.Rand, n, m int, lo, hi float64) *Graph {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = m
	}
	return Random(rng, sizes, lo, hi)
}

// SingleSourceSink wraps g with a new first stage and last stage of one
// node each, connected by zero-cost (semiring One) edges, producing the
// single-source single-sink shape of Figure 1(a).
func SingleSourceSink(s semiring.Semiring, g *Graph) *Graph {
	first := matrix.New(1, g.StageSizes[0], s.One())
	last := matrix.New(g.StageSizes[g.Stages()-1], 1, s.One())
	out := &Graph{
		StageSizes: append(append([]int{1}, g.StageSizes...), 1),
		Cost:       append(append([]*matrix.Matrix{first}, g.Cost...), last),
	}
	return out
}
