package multistage

import (
	"fmt"
	"math/rand"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// CostFunc computes the cost of the edge between a value x in stage k and a
// value y in stage k+1. The paper's Design 3 (Figure 5) assumes f is
// independent of the stage index; stage-dependent costs are still accepted
// here for the baselines.
type CostFunc func(x, y float64) float64

// NodeValued is the serial optimisation problem of equation (4):
// min over assignments of sum_k f(X_k, X_{k+1}), where Values[k] holds the
// quantized values the variable of stage k may take (Figure 1(b)). Edge
// costs are functions of the node values, which is what gives Design 3 its
// order-of-magnitude input-bandwidth reduction (Section 3.2).
type NodeValued struct {
	Values [][]float64
	F      CostFunc
}

// Validate checks that the problem has at least two stages, every stage is
// nonempty, and a cost function is present.
func (p *NodeValued) Validate() error {
	if len(p.Values) < 2 {
		return fmt.Errorf("multistage: node-valued problem needs >= 2 stages, have %d", len(p.Values))
	}
	for k, vs := range p.Values {
		if len(vs) == 0 {
			return fmt.Errorf("multistage: stage %d has no values", k)
		}
	}
	if p.F == nil {
		return fmt.Errorf("multistage: nil cost function")
	}
	return nil
}

// Stages returns the number of stages (variables) N.
func (p *NodeValued) Stages() int { return len(p.Values) }

// Uniform reports whether every stage has the same number of quantized
// values, the regularity Design 3's pipeline requires.
func (p *NodeValued) Uniform() (m int, ok bool) {
	m = len(p.Values[0])
	for _, vs := range p.Values[1:] {
		if len(vs) != m {
			return 0, false
		}
	}
	return m, true
}

// Expand materialises the node-valued problem as an explicit edge-cost
// multistage graph, evaluating F on every value pair. This is the
// high-bandwidth representation Design 3 exists to avoid; it feeds the
// baselines and Designs 1-2.
func (p *NodeValued) Expand() *Graph {
	g := &Graph{StageSizes: make([]int, len(p.Values))}
	for k, vs := range p.Values {
		g.StageSizes[k] = len(vs)
	}
	for k := 0; k+1 < len(p.Values); k++ {
		c := matrix.New(len(p.Values[k]), len(p.Values[k+1]), 0)
		for i, x := range p.Values[k] {
			for j, y := range p.Values[k+1] {
				c.Set(i, j, p.F(x, y))
			}
		}
		g.Cost = append(g.Cost, c)
	}
	return g
}

// Solve runs the variable-elimination recurrence of equations (10)-(13):
// h(x_{k}) = min over previous-stage values of h(prev) + f(prev, x_k),
// eliminating X_1 first. It returns the optimal objective value.
func (p *NodeValued) Solve(s semiring.Semiring) float64 {
	h := make([]float64, len(p.Values[0]))
	for i := range h {
		h[i] = s.One()
	}
	for k := 1; k < len(p.Values); k++ {
		nh := make([]float64, len(p.Values[k]))
		for j, y := range p.Values[k] {
			acc := s.Zero()
			for i, x := range p.Values[k-1] {
				acc = s.Add(acc, s.Mul(h[i], p.F(x, y)))
			}
			nh[j] = acc
		}
		h = nh
	}
	return semiring.Fold(s, h)
}

// SolvePath is Solve with path reconstruction: it returns the chosen value
// index per stage and the optimal objective value.
func (p *NodeValued) SolvePath(s semiring.Comparative) Path {
	n := len(p.Values)
	h := make([]float64, len(p.Values[0]))
	for i := range h {
		h[i] = s.One()
	}
	pred := make([][]int, n) // pred[k][j]: best previous-stage index for value j of stage k
	for k := 1; k < n; k++ {
		nh := make([]float64, len(p.Values[k]))
		pk := make([]int, len(p.Values[k]))
		for j, y := range p.Values[k] {
			best, arg := s.Zero(), -1
			for i, x := range p.Values[k-1] {
				t := s.Mul(h[i], p.F(x, y))
				if arg == -1 || s.Better(t, best) {
					best, arg = t, i
				}
			}
			nh[j], pk[j] = best, arg
		}
		h, pred[k] = nh, pk
	}
	best, arg := s.Zero(), -1
	for j, v := range h {
		if arg == -1 || s.Better(v, best) {
			best, arg = v, j
		}
	}
	nodes := make([]int, n)
	nodes[n-1] = arg
	for k := n - 1; k >= 1; k-- {
		nodes[k-1] = pred[k][nodes[k]]
	}
	return Path{Nodes: nodes, Cost: best}
}

// RandomNodeValued generates an N-stage problem with m quantized values per
// stage drawn uniformly from [lo, hi), using |x-y| as the cost function —
// the paper's traffic-control flavour, where edge cost is the difference in
// timings.
func RandomNodeValued(rng *rand.Rand, n, m int, lo, hi float64) *NodeValued {
	p := &NodeValued{F: AbsDiff}
	for k := 0; k < n; k++ {
		vs := make([]float64, m)
		for i := range vs {
			vs[i] = lo + rng.Float64()*(hi-lo)
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// AbsDiff is the |x-y| cost function of the traffic-control example in
// Section 2.2.
func AbsDiff(x, y float64) float64 {
	if x > y {
		return x - y
	}
	return y - x
}

// StagedCostFunc is a stage-dependent edge cost: the cost of moving from
// value x in stage k to value y in stage k+1. Figure 5's PEs carry
// subscripted F_i units in general; the paper drops the subscript "for
// simplicity", and StagedNodeValued restores it.
type StagedCostFunc func(k int, x, y float64) float64

// StagedNodeValued is the node-valued serial problem of equation (4) with
// per-stage cost functions — needed when edge costs depend on the stage
// index (e.g. tracking a time-varying reference).
type StagedNodeValued struct {
	Values [][]float64
	FK     StagedCostFunc
}

// Validate checks shape and the presence of a cost function.
func (p *StagedNodeValued) Validate() error {
	if len(p.Values) < 2 {
		return fmt.Errorf("multistage: staged problem needs >= 2 stages, have %d", len(p.Values))
	}
	for k, vs := range p.Values {
		if len(vs) == 0 {
			return fmt.Errorf("multistage: stage %d has no values", k)
		}
	}
	if p.FK == nil {
		return fmt.Errorf("multistage: nil staged cost function")
	}
	return nil
}

// Stages returns the number of stages.
func (p *StagedNodeValued) Stages() int { return len(p.Values) }

// Uniform reports whether every stage has the same number of values.
func (p *StagedNodeValued) Uniform() (m int, ok bool) {
	m = len(p.Values[0])
	for _, vs := range p.Values[1:] {
		if len(vs) != m {
			return 0, false
		}
	}
	return m, true
}

// Expand materialises the staged problem as an explicit multistage graph.
func (p *StagedNodeValued) Expand() *Graph {
	g := &Graph{StageSizes: make([]int, len(p.Values))}
	for k, vs := range p.Values {
		g.StageSizes[k] = len(vs)
	}
	for k := 0; k+1 < len(p.Values); k++ {
		c := matrix.New(len(p.Values[k]), len(p.Values[k+1]), 0)
		for i, x := range p.Values[k] {
			for j, y := range p.Values[k+1] {
				c.Set(i, j, p.FK(k, x, y))
			}
		}
		g.Cost = append(g.Cost, c)
	}
	return g
}

// Solve runs the elimination recurrence with stage-dependent costs.
func (p *StagedNodeValued) Solve(s semiring.Semiring) float64 {
	h := make([]float64, len(p.Values[0]))
	for i := range h {
		h[i] = s.One()
	}
	for k := 1; k < len(p.Values); k++ {
		nh := make([]float64, len(p.Values[k]))
		for j, y := range p.Values[k] {
			acc := s.Zero()
			for i, x := range p.Values[k-1] {
				acc = s.Add(acc, s.Mul(h[i], p.FK(k-1, x, y)))
			}
			nh[j] = acc
		}
		h = nh
	}
	return semiring.Fold(s, h)
}

// SolvePath is Solve with path reconstruction for staged problems.
func (p *StagedNodeValued) SolvePath(s semiring.Comparative) Path {
	n := len(p.Values)
	h := make([]float64, len(p.Values[0]))
	for i := range h {
		h[i] = s.One()
	}
	pred := make([][]int, n)
	for k := 1; k < n; k++ {
		nh := make([]float64, len(p.Values[k]))
		pk := make([]int, len(p.Values[k]))
		for j, y := range p.Values[k] {
			best, arg := s.Zero(), -1
			for i, x := range p.Values[k-1] {
				t := s.Mul(h[i], p.FK(k-1, x, y))
				if arg == -1 || s.Better(t, best) {
					best, arg = t, i
				}
			}
			nh[j], pk[j] = best, arg
		}
		h, pred[k] = nh, pk
	}
	best, arg := s.Zero(), -1
	for j, v := range h {
		if arg == -1 || s.Better(v, best) {
			best, arg = v, j
		}
	}
	nodes := make([]int, n)
	nodes[n-1] = arg
	for k := n - 1; k >= 1; k-- {
		nodes[k-1] = pred[k][nodes[k]]
	}
	return Path{Nodes: nodes, Cost: best}
}
