package multistage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

// figure1a builds the single-source single-sink shape of Figure 1(a):
// stages s | A(3) | B(3) | C(3) | t with deterministic costs.
func figure1a() *Graph {
	rng := rand.New(rand.NewSource(7))
	inner := RandomUniform(rng, 3, 3, 1, 10)
	return SingleSourceSink(mp, inner)
}

func TestValidate(t *testing.T) {
	g := figure1a()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := &Graph{StageSizes: []int{2}}
	if err := bad.Validate(); err == nil {
		t.Error("single-stage graph accepted")
	}
	bad2 := &Graph{StageSizes: []int{2, 2}, Cost: nil}
	if err := bad2.Validate(); err == nil {
		t.Error("missing cost matrices accepted")
	}
	bad3 := &Graph{
		StageSizes: []int{2, 2},
		Cost:       []*matrix.Matrix{matrix.New(3, 2, 0)},
	}
	if err := bad3.Validate(); err == nil {
		t.Error("mis-shaped cost matrix accepted")
	}
}

func TestForwardEqualsBackwardOptimum(t *testing.T) {
	// Equations (1) and (2) compute the same optimum from opposite ends.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := RandomUniform(rng, 4+rng.Intn(4), 2+rng.Intn(4), 0, 20)
		fwd := semiring.Fold(mp, SolveForward(mp, g))
		bwd := semiring.Fold(mp, SolveBackward(mp, g))
		if math.Abs(fwd-bwd) > 1e-9 {
			t.Fatalf("trial %d: forward %v != backward %v", trial, fwd, bwd)
		}
	}
}

func TestSolveOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		g := RandomUniform(rng, 3+rng.Intn(3), 2+rng.Intn(3), 0, 50)
		got := SolveOptimal(mp, g)
		want := BruteForce(mp, g)
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("trial %d: cost %v, brute force %v", trial, got.Cost, want.Cost)
		}
		// The returned path must actually attain the optimal cost.
		c, err := g.CostOf(mp, got.Nodes)
		if err != nil {
			t.Fatalf("trial %d: path invalid: %v", trial, err)
		}
		if math.Abs(c-got.Cost) > 1e-9 {
			t.Fatalf("trial %d: path cost %v != reported %v", trial, c, got.Cost)
		}
	}
}

func TestSolveOptimalMaxPlus(t *testing.T) {
	// The solver is semiring-generic: longest path under (MAX,+).
	s := semiring.MaxPlus{}
	rng := rand.New(rand.NewSource(17))
	g := RandomUniform(rng, 4, 3, 0, 10)
	got := SolveOptimal(s, g)
	want := BruteForce(s, g)
	if math.Abs(got.Cost-want.Cost) > 1e-9 {
		t.Fatalf("max-plus: %v vs brute force %v", got.Cost, want.Cost)
	}
}

func TestCostOfErrors(t *testing.T) {
	g := figure1a()
	if _, err := g.CostOf(mp, []int{0}); err == nil {
		t.Error("short path accepted")
	}
	nodes := make([]int, g.Stages())
	nodes[1] = 99
	if _, err := g.CostOf(mp, nodes); err == nil {
		t.Error("out-of-range node accepted")
	}
	nodes[1] = 0
	nodes[g.Stages()-1] = -1
	if _, err := g.CostOf(mp, nodes); err == nil {
		t.Error("negative final node accepted")
	}
}

func TestSingleSourceSinkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inner := RandomUniform(rng, 3, 4, 1, 5)
	g := SingleSourceSink(mp, inner)
	if g.StageSizes[0] != 1 || g.StageSizes[g.Stages()-1] != 1 {
		t.Fatalf("stage sizes = %v", g.StageSizes)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Optimum of wrapped graph equals optimum of inner graph (One edges).
	in := SolveOptimal(mp, inner)
	out := SolveOptimal(mp, g)
	if math.Abs(in.Cost-out.Cost) > 1e-9 {
		t.Errorf("wrapped optimum %v != inner optimum %v", out.Cost, in.Cost)
	}
}

func TestMatricesAreChainOfEquation8(t *testing.T) {
	// Solving via the forward sweep must equal evaluating the matrix string
	// A.(B.(C.D)) of equation (8c) directly.
	g := figure1a()
	ones := []float64{mp.One()}
	chain := matrix.ChainVec(mp, g.Matrices(), ones)
	fwd := SolveForward(mp, g)
	if len(chain) != 1 || len(fwd) != 1 || math.Abs(chain[0]-fwd[0]) > 1e-9 {
		t.Errorf("chain %v != forward %v", chain, fwd)
	}
}

func TestPropertyPathNeverBeatsOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomUniform(rng, 3+rng.Intn(3), 2+rng.Intn(3), 0, 30)
		opt := SolveOptimal(mp, g)
		// Any random path must cost at least the optimum.
		nodes := make([]int, g.Stages())
		for k := range nodes {
			nodes[k] = rng.Intn(g.StageSizes[k])
		}
		c, err := g.CostOf(mp, nodes)
		return err == nil && c >= opt.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNodeValuedValidate(t *testing.T) {
	p := &NodeValued{Values: [][]float64{{1, 2}, {3, 4}}, F: AbsDiff}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&NodeValued{Values: [][]float64{{1}}, F: AbsDiff}).Validate(); err == nil {
		t.Error("1-stage problem accepted")
	}
	if err := (&NodeValued{Values: [][]float64{{1}, {}}, F: AbsDiff}).Validate(); err == nil {
		t.Error("empty stage accepted")
	}
	if err := (&NodeValued{Values: [][]float64{{1}, {2}}}).Validate(); err == nil {
		t.Error("nil cost function accepted")
	}
}

func TestNodeValuedUniform(t *testing.T) {
	p := &NodeValued{Values: [][]float64{{1, 2}, {3, 4}}, F: AbsDiff}
	if m, ok := p.Uniform(); !ok || m != 2 {
		t.Errorf("Uniform = (%d,%v), want (2,true)", m, ok)
	}
	q := &NodeValued{Values: [][]float64{{1, 2}, {3}}, F: AbsDiff}
	if _, ok := q.Uniform(); ok {
		t.Error("ragged problem reported uniform")
	}
}

func TestNodeValuedSolveMatchesExpandedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		p := RandomNodeValued(rng, 3+rng.Intn(4), 2+rng.Intn(4), 0, 10)
		direct := p.Solve(mp)
		viaGraph := SolveOptimal(mp, p.Expand()).Cost
		if math.Abs(direct-viaGraph) > 1e-9 {
			t.Fatalf("trial %d: direct %v != graph %v", trial, direct, viaGraph)
		}
	}
}

func TestNodeValuedSolvePath(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		p := RandomNodeValued(rng, 3+rng.Intn(3), 2+rng.Intn(3), 0, 10)
		path := p.SolvePath(mp)
		if math.Abs(path.Cost-p.Solve(mp)) > 1e-9 {
			t.Fatalf("trial %d: path cost %v != solve %v", trial, path.Cost, p.Solve(mp))
		}
		// Recompute the path's cost by hand.
		var c float64
		for k := 0; k+1 < len(path.Nodes); k++ {
			c += AbsDiff(p.Values[k][path.Nodes[k]], p.Values[k+1][path.Nodes[k+1]])
		}
		if math.Abs(c-path.Cost) > 1e-9 {
			t.Fatalf("trial %d: recomputed %v != reported %v", trial, c, path.Cost)
		}
	}
}

func TestNodeValuedExpandShape(t *testing.T) {
	p := &NodeValued{
		Values: [][]float64{{0, 1, 2}, {5, 6, 7}, {1, 1, 1}},
		F:      AbsDiff,
	}
	g := p.Expand()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cost[0].At(0, 2) != 7 { // |0-7|
		t.Errorf("cost[0](0,2) = %v, want 7", g.Cost[0].At(0, 2))
	}
}

func TestAbsDiff(t *testing.T) {
	if AbsDiff(3, 5) != 2 || AbsDiff(5, 3) != 2 || AbsDiff(4, 4) != 0 {
		t.Error("AbsDiff wrong")
	}
}

func TestStagedNodeValuedSolveAndPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		p := &StagedNodeValued{
			FK: func(k int, x, y float64) float64 {
				return float64(k+1) * AbsDiff(x, y)
			},
		}
		n, m := 3+rng.Intn(4), 2+rng.Intn(4)
		for k := 0; k < n; k++ {
			vs := make([]float64, m)
			for i := range vs {
				vs[i] = rng.Float64() * 10
			}
			p.Values = append(p.Values, vs)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		direct := p.Solve(mp)
		viaGraph := SolveOptimal(mp, p.Expand()).Cost
		if math.Abs(direct-viaGraph) > 1e-9 {
			t.Fatalf("trial %d: direct %v != graph %v", trial, direct, viaGraph)
		}
		path := p.SolvePath(mp)
		if math.Abs(path.Cost-direct) > 1e-9 {
			t.Fatalf("trial %d: path cost %v != solve %v", trial, path.Cost, direct)
		}
		var c float64
		for k := 0; k+1 < len(path.Nodes); k++ {
			c += p.FK(k, p.Values[k][path.Nodes[k]], p.Values[k+1][path.Nodes[k+1]])
		}
		if math.Abs(c-path.Cost) > 1e-9 {
			t.Fatalf("trial %d: recomputed %v != reported %v", trial, c, path.Cost)
		}
	}
}

func TestStagedValidateErrors(t *testing.T) {
	if err := (&StagedNodeValued{Values: [][]float64{{1}}}).Validate(); err == nil {
		t.Error("1-stage accepted")
	}
	fk := func(int, float64, float64) float64 { return 0 }
	if err := (&StagedNodeValued{Values: [][]float64{{1}, {}}, FK: fk}).Validate(); err == nil {
		t.Error("empty stage accepted")
	}
	if err := (&StagedNodeValued{Values: [][]float64{{1}, {2}}}).Validate(); err == nil {
		t.Error("nil FK accepted")
	}
	good := &StagedNodeValued{Values: [][]float64{{1, 2}, {3, 4}}, FK: fk}
	if m, ok := good.Uniform(); !ok || m != 2 {
		t.Error("Uniform wrong")
	}
	if good.Stages() != 2 {
		t.Error("Stages wrong")
	}
}
