package dtw

import (
	"fmt"
	"math"
)

// Pair is one DTW instance of a multi-instance batch: query series X
// matched against reference series Y.
type Pair struct {
	X, Y []float64
}

// SweepBatch computes the DTW distance of B same-shape instances with ONE
// anti-diagonal wavefront swept over the stacked |x|×|y| lattices — the
// multi-instance pipelining trick of the GPU-DP paper (PAPERS.md): since
// every lattice shares the wavefront schedule, stacking B instances turns
// B pipeline fills into one. All pairs must share len(X) and len(Y); a
// mismatched pair fails the whole batch (shape bucketing upstream keeps
// mismatches out of one batch).
//
// Per instance the cell updates are EXACTLY Sequential's float64
// operations in a different evaluation order — the recurrence has no
// cross-cell arithmetic reassociation — so results are bitwise identical
// to Sequential (and therefore to the systolic Array, which the
// differential checker pins to Sequential).
//
// The returned cycle count is the Design-1-style stream model for a
// linear array of m PEs: the B stacked lattices stream their B·n query
// rows back to back through one pipeline, so the batch occupies the
// array for B·n + m − 1 cycles instead of B·(n + m − 1) — the fill is
// paid once.
func SweepBatch(pairs []Pair, d Dist) (dists []float64, cycles int, err error) {
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("dtw: empty batch")
	}
	if d == nil {
		d = AbsDist
	}
	n, m := len(pairs[0].X), len(pairs[0].Y)
	for i, p := range pairs {
		if len(p.X) == 0 || len(p.Y) == 0 {
			return nil, 0, fmt.Errorf("dtw: batch instance %d has an empty series", i)
		}
		if len(p.X) != n || len(p.Y) != m {
			return nil, 0, fmt.Errorf("dtw: batch instance %d is %dx%d, batch shape is %dx%d",
				i, len(p.X), len(p.Y), n, m)
		}
	}
	b := len(pairs)
	// Three rolling anti-diagonal buffers per instance, indexed by lattice
	// row i: cur is diagonal t (cells i+j = t), prev is t-1, prev2 is t-2.
	// Cell (i,j) reads up = prev[i-1] (= D(i-1,j)), left = prev[i]
	// (= D(i,j-1)) and diag = prev2[i-1] (= D(i-1,j-1)).
	prev2 := make([]float64, b*n)
	prev := make([]float64, b*n)
	cur := make([]float64, b*n)
	for t := 0; t < n+m-1; t++ {
		lo := t - m + 1
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > n-1 {
			hi = n - 1
		}
		for q, p := range pairs {
			base := q * n
			for i := lo; i <= hi; i++ {
				j := t - i
				c := d(p.X[i], p.Y[j])
				switch {
				case i == 0 && j == 0:
					cur[base+i] = c
				case i == 0:
					cur[base+i] = c + prev[base+i] // D(0, j-1)
				case j == 0:
					cur[base+i] = c + prev[base+i-1] // D(i-1, 0)
				default:
					cur[base+i] = c + math.Min(prev[base+i-1], math.Min(prev[base+i], prev2[base+i-1]))
				}
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	// After the final rotation prev holds the last diagonal, which contains
	// only the corner cell (n-1, m-1).
	dists = make([]float64, b)
	for q := range pairs {
		dists[q] = prev[q*n+n-1]
	}
	return dists, b*n + m - 1, nil
}
