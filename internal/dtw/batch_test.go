package dtw

import (
	"math"
	"math/rand"
	"testing"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Floor(rng.Float64()*20) - 10 // integer-valued: sums stay exact
	}
	return s
}

// The batched sweep must be bitwise identical to the sequential DP for
// every instance, at several batch sizes and lattice shapes (including
// degenerate 1×m and n×1 lattices).
func TestSweepBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := [][2]int{{1, 1}, {1, 5}, {5, 1}, {2, 3}, {7, 7}, {13, 6}, {4, 19}}
	for _, sh := range shapes {
		n, m := sh[0], sh[1]
		for _, b := range []int{1, 2, 7} {
			pairs := make([]Pair, b)
			for q := range pairs {
				pairs[q] = Pair{X: randSeries(rng, n), Y: randSeries(rng, m)}
			}
			dists, cycles, err := SweepBatch(pairs, AbsDist)
			if err != nil {
				t.Fatalf("SweepBatch(n=%d m=%d b=%d): %v", n, m, b, err)
			}
			if want := b*n + m - 1; cycles != want {
				t.Fatalf("n=%d m=%d b=%d: cycles = %d, want stream model %d", n, m, b, cycles, want)
			}
			for q, p := range pairs {
				seq, err := Sequential(p.X, p.Y, AbsDist)
				if err != nil {
					t.Fatal(err)
				}
				if dists[q] != seq {
					t.Fatalf("n=%d m=%d b=%d instance %d: batch %v != sequential %v", n, m, b, q, dists[q], seq)
				}
			}
		}
	}
}

// Batch order must not affect any instance's answer.
func TestSweepBatchOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := make([]Pair, 5)
	for q := range pairs {
		pairs[q] = Pair{X: randSeries(rng, 6), Y: randSeries(rng, 9)}
	}
	fwd, _, err := SweepBatch(pairs, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Pair, len(pairs))
	for q := range pairs {
		rev[q] = pairs[len(pairs)-1-q]
	}
	back, _, err := SweepBatch(rev, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	for q := range pairs {
		if fwd[q] != back[len(pairs)-1-q] {
			t.Fatalf("instance %d: %v forward vs %v reversed", q, fwd[q], back[len(pairs)-1-q])
		}
	}
}

func TestSweepBatchRejectsMismatchedShapes(t *testing.T) {
	_, _, err := SweepBatch([]Pair{
		{X: []float64{1, 2}, Y: []float64{3}},
		{X: []float64{1, 2, 3}, Y: []float64{3}},
	}, nil)
	if err == nil {
		t.Fatal("mismatched |x| accepted")
	}
	_, _, err = SweepBatch(nil, nil)
	if err == nil {
		t.Fatal("empty batch accepted")
	}
	_, _, err = SweepBatch([]Pair{{X: nil, Y: []float64{1}}}, nil)
	if err == nil {
		t.Fatal("empty series accepted")
	}
}
