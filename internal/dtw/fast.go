package dtw

// The zero-allocation cache-tiled DTW kernel. Three gaps between the
// paper's fixed-function PEs and the Go engines are closed here:
//
//   - dispatch: the sample distance is a generic value-type Metric, so
//     the per-cell d(x_i, y_j) call monomorphizes and inlines — no func
//     or interface indirection in the O(n·m) inner loop;
//   - allocation: lattice storage lives in a per-shape pooled Workspace
//     (internal/arena), checked out per solve and returned only on the
//     clean path, so steady-state same-shape solves allocate nothing;
//   - locality: the lattice is blocked into T×T tiles swept in wavefront
//     order. Cell dependencies cross tile borders only through the
//     bottom row of each tile-row (hb, nI×m values) and the right column
//     of each tile-column (vb, nJ×n values), so the working set per tile
//     is 3 tile edges + the T×T tile itself instead of two full lattice
//     rows of a potentially huge m. Tiles on one anti-diagonal are
//     independent — the same wavefront the paper's array exploits — and
//     large lattices fan the diagonal across the shared tile.Pool.
//
// Every cell evaluates EXACTLY Sequential's float64 expression (same
// math.Min nesting, same boundary cases) in a dependency-respecting
// order; DTW's min-plus recurrence has no cross-cell reassociation, so
// results are bitwise identical to Sequential at every tile size. The
// differential checker pins this at T ∈ {1, 7, 64, full}.

import (
	"fmt"
	"math"

	"systolicdp/internal/arena"
	"systolicdp/internal/tile"
)

// Metric is the monomorphizable sample-distance constraint: implemented
// by zero-size op structs so the generic kernels inline the call.
type Metric interface {
	Dist(a, b float64) float64
}

// AbsMetric is AbsDist as an inlinable value type.
type AbsMetric struct{}

// Dist returns |a-b|.
func (AbsMetric) Dist(a, b float64) float64 { return AbsDist(a, b) }

// SqMetric is SqDist as an inlinable value type.
type SqMetric struct{}

// Dist returns (a-b)^2.
func (SqMetric) Dist(a, b float64) float64 { return SqDist(a, b) }

// FuncMetric adapts an arbitrary Dist func to the Metric constraint —
// the fallback when the distance is not one of the named serving
// metrics; it keeps one indirect call per cell, exactly the old cost.
type FuncMetric struct{ F Dist }

// Dist calls the wrapped function.
func (m FuncMetric) Dist(a, b float64) float64 { return m.F(a, b) }

// DefaultTile is the default tile edge: a 64×64 float64 tile is 32 KiB,
// which together with its three border edges sits inside a typical L1
// data cache (see docs/tiling.md for the ablation).
const DefaultTile = 64

// parallelMinCells gates the wavefront fan-out: below this much work per
// lattice the barrier overhead exceeds the win and the sweep stays
// inline on the caller.
const parallelMinCells = 1 << 16

// Workspace is the pooled per-shape lattice storage.
type Workspace struct {
	hb, vb []float64 // tile border rows (nI×m) and columns (nJ×n)
	tiles  []float64 // per-lane rolling-diagonal buffers, Workers()·3·T
	job    any       // reusable tile job (per Metric instantiation)
}

type shapeKey struct{ n, m int }

var wsPool = arena.NewKeyed[shapeKey](func() *Workspace { return new(Workspace) })

// SolveFast computes the DTW distance with the tiled monomorphized
// kernel at the default tile size, using a pooled per-shape workspace.
// Bitwise identical to Sequential(x, y, d). A nil d selects AbsDist via
// its inlinable op (the serving path's metric).
func SolveFast(x, y []float64, d Dist) (float64, error) {
	if d == nil {
		return solveFast(x, y, AbsMetric{}, DefaultTile)
	}
	return solveFast(x, y, FuncMetric{d}, DefaultTile)
}

// SolveTiled is SolveFast with an explicit tile size (T <= 0 selects the
// default, T larger than the lattice degenerates to one tile): the knob
// the differential checker and the tiling ablation sweep.
func SolveTiled(x, y []float64, d Dist, T int) (float64, error) {
	if d == nil {
		return solveFast(x, y, AbsMetric{}, T)
	}
	return solveFast(x, y, FuncMetric{d}, T)
}

func solveFast[M Metric](x, y []float64, met M, T int) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("dtw: empty series")
	}
	key := shapeKey{len(x), len(y)}
	ws := wsPool.Get(key)
	v := solveTiled(x, y, met, T, ws, tile.Default())
	// Clean completion only — a panicking solve drops ws (arena
	// poisoning discipline).
	wsPool.Put(key, ws)
	return v, nil
}

// dtwJob carries one tile anti-diagonal across the worker pool; it lives
// in the Workspace so steady-state sweeps allocate nothing.
type dtwJob[M Metric] struct {
	x, y  []float64
	met   M
	ws    *Workspace
	T     int
	d, lo int // current diagonal index and its lowest tile-row
}

func (j *dtwJob[M]) Do(slot, k int) {
	I := j.lo + k
	J := j.d - I
	buf := j.ws.tiles[slot*3*j.T : (slot+1)*3*j.T]
	dtwTile(j.x, j.y, j.met, j.T, I, J, j.ws.hb, j.ws.vb, buf)
}

// solveTiled runs the blocked sweep. ws is grown to shape; pl supplies
// the wavefront lanes (nil or width 1 keeps the sweep inline).
func solveTiled[M Metric](x, y []float64, met M, T int, ws *Workspace, pl *tile.Pool) float64 {
	n, m := len(x), len(y)
	if T <= 0 {
		T = DefaultTile
	}
	if T > n && T > m {
		T = max(n, m)
	}
	nI := (n + T - 1) / T
	nJ := (m + T - 1) / T
	ws.hb = arena.Floats(ws.hb, nI*m)
	ws.vb = arena.Floats(ws.vb, nJ*n)
	lanes := pl.Workers()
	par := lanes > 1 && nI > 1 && nJ > 1 && n*m >= parallelMinCells
	if !par {
		lanes = 1
	}
	ws.tiles = arena.Floats(ws.tiles, lanes*3*T)
	if !par {
		// Row-major over the tile grid respects every dependency and is
		// the cache-friendliest order for one lane.
		buf := ws.tiles[:3*T]
		for I := 0; I < nI; I++ {
			for J := 0; J < nJ; J++ {
				dtwTile(x, y, met, T, I, J, ws.hb, ws.vb, buf)
			}
		}
		return ws.hb[(nI-1)*m+m-1]
	}
	job, _ := ws.job.(*dtwJob[M])
	if job == nil {
		job = new(dtwJob[M])
		ws.job = job
	}
	job.x, job.y, job.met, job.ws, job.T = x, y, met, ws, T
	for d := 0; d < nI+nJ-1; d++ {
		lo := max(0, d-nJ+1)
		hi := min(nI-1, d)
		job.d, job.lo = d, lo
		pl.Run(hi-lo+1, job)
	}
	job.x, job.y = nil, nil // don't pin caller series in the pool
	return ws.hb[(nI-1)*m+m-1]
}

// dtwTile fills tile (I, J) of the blocked lattice: rows i0..i1, cols
// j0..j1, reading its north border from hb[I-1], west border from
// vb[J-1], the NW corner from hb[I-1][j0-1], and publishing its own
// south row into hb[I] and east column into vb[J]. buf is the caller's
// private 3·T rolling-diagonal scratch.
func dtwTile[M Metric](x, y []float64, met M, T, I, J int, hb, vb, buf []float64) {
	n, m := len(x), len(y)
	i0 := I * T
	i1 := min(i0+T, n) - 1
	j0 := J * T
	j1 := min(j0+T, m) - 1
	w := j1 - j0 + 1
	var hbPrev, vbPrev []float64
	if I > 0 {
		hbPrev = hb[(I-1)*m : I*m]
	}
	if J > 0 {
		vbPrev = vb[(J-1)*n : J*n]
	}
	h := i1 - i0 + 1
	xs := x[i0 : i1+1]
	ys := y[j0 : j1+1]
	// The tile itself is swept by anti-diagonals — the paper's wavefront,
	// which is also the ILP-friendly software order: cells on one
	// diagonal have no dependency chain between them, so the CPU overlaps
	// their min-plus updates, where a row-major order would serialize on
	// the left neighbour. Three rolling diagonal registers of length h
	// (buf carries all three, 3·T floats) are the only state.
	prev2 := buf[0:h]
	prev := buf[h : 2*h]
	cur := buf[2*h : 3*h]
	hbOut := hb[I*m : I*m+m]
	vbOut := vb[J*n : J*n+n]
	for t := 0; t < h+w-1; t++ {
		lo := t - w + 1
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > h-1 {
			hi = h - 1
		}
		// Edge cell ii == hi when jj == 0 (t < h): reads the west border.
		// Edge cell ii == 0 (lo == 0): reads the north border. Both peeled
		// so the interior loop is branch-free.
		ia, ib := lo, hi // interior range [ia, ib]
		if lo == 0 {
			ia = 1
			jj := t
			c := met.Dist(xs[0], ys[jj])
			var v float64
			switch {
			case i0 == 0 && j0+jj == 0: // lattice origin
				v = c
			case i0 == 0: // lattice top row: left neighbour only
				if jj > 0 {
					v = c + prev[0]
				} else {
					v = c + vbPrev[0]
				}
			case j0+jj == 0: // lattice west column: up neighbour only
				v = c + hbPrev[0]
			default:
				var up, left, diag float64
				if jj > 0 {
					up = hbPrev[j0+jj]
					left = prev[0]
					diag = hbPrev[j0+jj-1]
				} else { // tile NW corner (i0 > 0, j0 > 0)
					up = hbPrev[j0]
					left = vbPrev[i0]
					diag = hbPrev[j0-1]
				}
				v = c + math.Min(up, math.Min(left, diag))
			}
			cur[0] = v
			if h == 1 {
				hbOut[j0+jj] = v
			}
			if jj == w-1 {
				vbOut[i0] = v
			}
		}
		if t > 0 && t < h { // edge cell (ii = t, jj = 0)
			ib = t - 1
			ii := t
			c := met.Dist(xs[ii], ys[0])
			var v float64
			if j0 == 0 { // lattice west column: up neighbour only
				v = c + prev[ii-1]
			} else {
				up := prev[ii-1]
				left := vbPrev[i0+ii]
				diag := vbPrev[i0+ii-1] // D(i-1, j0-1): west border, one row up
				v = c + math.Min(up, math.Min(left, diag))
			}
			cur[ii] = v
			if ii == h-1 {
				hbOut[j0] = v
			}
			if w == 1 {
				vbOut[i0+ii] = v
			}
		}
		for ii := ia; ii <= ib; ii++ {
			// Pure interior: both neighbours inside the tile's previous
			// diagonals. jj = t - ii >= 1 and ii >= 1 here.
			c := met.Dist(xs[ii], ys[t-ii])
			v := c + math.Min(prev[ii-1], math.Min(prev[ii], prev2[ii-1]))
			cur[ii] = v
			if ii == h-1 {
				hbOut[j0+t-ii] = v
			}
			if t-ii == w-1 {
				vbOut[i0+ii] = v
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
}

// SweepBatchFast solves B same-shape instances with the tiled
// monomorphized kernel, one instance at a time on a shared pooled
// workspace — bitwise identical per instance to Sequential and therefore
// to SweepBatch. It validates and prices exactly like SweepBatch: the
// returned cycle count is the same B·n + m − 1 streamed-array model (the
// batch still occupies one logical array; only the software evaluation
// order changed). A nil d selects the inlinable AbsDist op.
func SweepBatchFast(pairs []Pair, d Dist) (dists []float64, cycles int, err error) {
	dists = make([]float64, len(pairs))
	cycles, err = SweepBatchFastInto(dists, pairs, d)
	if err != nil {
		return nil, 0, err
	}
	return dists, cycles, nil
}

// SweepBatchFastInto is SweepBatchFast writing into a caller-owned
// result slice (len(dists) must equal len(pairs)) for allocation-free
// steady-state batches.
func SweepBatchFastInto(dists []float64, pairs []Pair, d Dist) (cycles int, err error) {
	if len(pairs) == 0 {
		return 0, fmt.Errorf("dtw: empty batch")
	}
	if len(dists) != len(pairs) {
		return 0, fmt.Errorf("dtw: dists length %d != batch size %d", len(dists), len(pairs))
	}
	n, m := len(pairs[0].X), len(pairs[0].Y)
	for i, p := range pairs {
		if len(p.X) == 0 || len(p.Y) == 0 {
			return 0, fmt.Errorf("dtw: batch instance %d has an empty series", i)
		}
		if len(p.X) != n || len(p.Y) != m {
			return 0, fmt.Errorf("dtw: batch instance %d is %dx%d, batch shape is %dx%d",
				i, len(p.X), len(p.Y), n, m)
		}
	}
	key := shapeKey{n, m}
	ws := wsPool.Get(key)
	if d == nil {
		sweepBatchInto(dists, pairs, AbsMetric{}, ws)
	} else {
		sweepBatchInto(dists, pairs, FuncMetric{d}, ws)
	}
	wsPool.Put(key, ws) // clean completion only
	return len(pairs)*n + m - 1, nil
}

// sweepBatchInto is SweepBatch's shared anti-diagonal sweep with the
// metric monomorphized and the three rolling b·n diagonal buffers drawn
// from the pooled workspace: every cell evaluates exactly SweepBatch's
// expression in the same order, so results are bitwise identical; only
// the allocations and the per-cell dispatch are gone. The two boundary
// cells of each diagonal (lattice row 0 and column 0) are peeled so the
// interior loop — independent cells, full ILP — is branch-free.
func sweepBatchInto[M Metric](dists []float64, pairs []Pair, met M, ws *Workspace) {
	n, m := len(pairs[0].X), len(pairs[0].Y)
	b := len(pairs)
	prev2 := arena.Floats(ws.hb, b*n)
	prev := arena.Floats(ws.vb, b*n)
	cur := arena.Floats(ws.tiles, b*n)
	for t := 0; t < n+m-1; t++ {
		lo := t - m + 1
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > n-1 {
			hi = n - 1
		}
		for q, p := range pairs {
			base := q * n
			cu := cur[base : base+n]
			pv := prev[base : base+n]
			p2 := prev2[base : base+n]
			xs, ys := p.X, p.Y
			ia, ib := lo, hi
			if lo == 0 { // cell (0, t): top row, left neighbour only
				ia = 1
				c := met.Dist(xs[0], ys[t])
				if t == 0 {
					cu[0] = c
				} else {
					cu[0] = c + pv[0]
				}
			}
			if t > 0 && t < n { // cell (t, 0): west column, up neighbour only
				ib = t - 1
				cu[t] = met.Dist(xs[t], ys[0]) + pv[t-1]
			}
			for i := ia; i <= ib; i++ {
				c := met.Dist(xs[i], ys[t-i])
				cu[i] = c + math.Min(pv[i-1], math.Min(pv[i], p2[i-1]))
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	// After the final rotation prev holds the last diagonal (corner cells).
	for q := range pairs {
		dists[q] = prev[q*n+n-1]
	}
	ws.hb, ws.vb, ws.tiles = prev2, prev, cur // keep the grown capacity pooled
}
