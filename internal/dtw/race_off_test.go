//go:build !race

package dtw

const raceEnabled = false
