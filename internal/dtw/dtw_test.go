package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 10
	}
	return out
}

func TestSequentialKnownValues(t *testing.T) {
	// Identical series: distance 0.
	x := []float64{1, 2, 3, 4}
	got, err := Sequential(x, x, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("self-distance %v, want 0", got)
	}
	// A shifted copy warps at cost of the boundary mismatches only.
	a := []float64{0, 0, 1, 2, 3}
	b := []float64{0, 1, 2, 3, 3}
	got, err = Sequential(a, b, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("warp distance %v, want 0 (time-shifted series align)", got)
	}
	// Hand-computed 2x2: x=[0,1], y=[2,3].
	// D(0,0)=2; D(0,1)=2+3=5; D(1,0)=2+1=3; D(1,1)=|1-3|+min(5,3,2)=4.
	got, err = Sequential([]float64{0, 1}, []float64{2, 3}, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("2x2 distance %v, want 4", got)
	}
}

func TestSequentialErrors(t *testing.T) {
	if _, err := Sequential(nil, []float64{1}, nil); err == nil {
		t.Error("empty x accepted")
	}
	if _, err := Sequential([]float64{1}, nil, nil); err == nil {
		t.Error("empty y accepted")
	}
}

func TestArrayMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n, m := 1+rng.Intn(12), 1+rng.Intn(12)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		want, err := Sequential(x, y, AbsDist)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := New(y, AbsDist)
		if err != nil {
			t.Fatal(err)
		}
		got, cycles, err := arr.Match(x, false)
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): %v", trial, n, m, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d): array %v, sequential %v", trial, n, m, got, want)
		}
		if cycles != n+m-1 {
			t.Fatalf("trial %d: %d cycles, want n+m-1 = %d", trial, cycles, n+m-1)
		}
	}
}

func TestArrayGoroutinesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomSeries(rng, 9)
	y := randomSeries(rng, 7)
	arr, err := New(y, SqDist)
	if err != nil {
		t.Fatal(err)
	}
	lock, _, err := arr.Match(x, false)
	if err != nil {
		t.Fatal(err)
	}
	goro, _, err := arr.Match(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lock-goro) > 1e-12 {
		t.Errorf("lockstep %v != goroutines %v", lock, goro)
	}
}

func TestArrayReuseAcrossQueries(t *testing.T) {
	// One reference array matched against many queries (the speech-
	// recognition deployment: templates in hardware, utterances stream).
	rng := rand.New(rand.NewSource(3))
	y := randomSeries(rng, 8)
	arr, err := New(y, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		x := randomSeries(rng, 4+q)
		want, err := Sequential(x, y, AbsDist)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := arr.Match(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("query %d: %v vs %v", q, got, want)
		}
	}
}

func TestArrayErrors(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty reference accepted")
	}
	arr, err := New([]float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := arr.Match(nil, false); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDistanceSymmetryOnEqualLengths(t *testing.T) {
	// DTW with a symmetric pointwise distance is symmetric.
	rng := rand.New(rand.NewSource(4))
	x := randomSeries(rng, 10)
	y := randomSeries(rng, 10)
	ab, err := Sequential(x, y, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Sequential(y, x, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", ab, ba)
	}
}

func TestPropertyArrayEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomSeries(rng, 1+rng.Intn(10))
		y := randomSeries(rng, 1+rng.Intn(10))
		want, err := Sequential(x, y, SqDist)
		if err != nil {
			return false
		}
		arr, err := New(y, SqDist)
		if err != nil {
			return false
		}
		got, _, err := arr.Match(x, false)
		return err == nil && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLowerBound(t *testing.T) {
	// DTW distance is at least |sum endpoint mismatch| 0 and at most the
	// pointwise cost of the diagonal-ish path; sanity: non-negative.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomSeries(rng, 1+rng.Intn(8))
		y := randomSeries(rng, 1+rng.Intn(8))
		d, err := Sequential(x, y, AbsDist)
		return err == nil && d >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatchBankFindsNearestTemplate(t *testing.T) {
	templates := [][]float64{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 2, 2, 2, 2},
	}
	// A noisy rising ramp must match template 0.
	query := []float64{0.1, 0.9, 2.1, 2.9, 4.2}
	best, dist, err := MatchBank(templates, query, AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Errorf("best = %d (dist %v), want 0", best, dist)
	}
	// The reported distance equals the direct computation.
	want, err := Sequential(query, templates[0], AbsDist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist-want) > 1e-9 {
		t.Errorf("dist %v, want %v", dist, want)
	}
}

func TestMatchBankErrors(t *testing.T) {
	if _, _, err := MatchBank(nil, []float64{1}, nil); err == nil {
		t.Error("empty bank accepted")
	}
	if _, _, err := MatchBank([][]float64{{}}, []float64{1}, nil); err == nil {
		t.Error("empty template accepted")
	}
}
