// Package dtw implements dynamic time warping, the pattern-recognition DP
// the paper's Section 1 cites (Ney's DP for pattern recognition; Clarke &
// Dyer's systolic array for curve detection is the same lattice shape).
// The recurrence
//
//	D(i,j) = d(x_i, y_j) + min( D(i-1,j), D(i,j-1), D(i-1,j-1) )
//
// is evaluated two ways: the sequential O(n*m) DP baseline, and a linear
// systolic array of m PEs (one per sample of the reference series) on the
// shared engine. Row tokens stream through the array and anti-diagonals
// of the lattice compute in parallel, finishing in n+m-1 cycles — the
// classic systolic wavefront for this recurrence.
package dtw

import (
	"fmt"
	"math"

	"systolicdp/internal/systolic"
)

// Dist is a pointwise sample distance.
type Dist func(a, b float64) float64

// AbsDist is |a-b|.
func AbsDist(a, b float64) float64 { return math.Abs(a - b) }

// SqDist is (a-b)^2.
func SqDist(a, b float64) float64 { return (a - b) * (a - b) }

// Sequential computes the DTW distance between x and y with the O(n*m)
// baseline DP.
func Sequential(x, y []float64, d Dist) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("dtw: empty series")
	}
	if d == nil {
		d = AbsDist
	}
	n, m := len(x), len(y)
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			c := d(x[i], y[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = c
			case i == 0:
				cur[j] = c + cur[j-1]
			case j == 0:
				cur[j] = c + prev[j]
			default:
				cur[j] = c + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1], nil
}

// pe is one column processor: it owns y_j, its previous-row value
// D(i-1, j), and forwards (x_i, D(i,j), D(i-1,j)) to the next column.
type pe struct {
	j       int
	y       float64
	d       Dist
	prevOwn float64 // D(i-1, j)
	lastInW float64 // D(i-1, j-1): the previous row's incoming left value
}

func (p *pe) NumIn() int  { return 1 }
func (p *pe) NumOut() int { return 1 }
func (p *pe) Reset() {
	p.prevOwn = math.Inf(1)
	p.lastInW = math.Inf(1)
}

func (p *pe) Step(in []systolic.Token) ([]systolic.Token, bool) {
	tok := in[0]
	if !tok.Valid {
		return []systolic.Token{systolic.Bubble()}, false
	}
	// tok.V = x_i and tok.W = D(i, j-1). The diagonal D(i-1, j-1) needs
	// no extra wire: it is exactly the left value this PE received on the
	// previous row, held in the lastInW register.
	diag := p.lastInW
	left := tok.W
	up := p.prevOwn
	best := math.Min(up, math.Min(left, diag))
	if math.IsInf(best, 1) {
		best = 0 // the (0,0) corner starts the lattice
	}
	val := p.d(tok.V, p.y) + best
	p.lastInW = left
	p.prevOwn = val
	out := tok
	out.W = val
	return []systolic.Token{out}, true
}

// Array is a DTW systolic array for a fixed reference series y.
type Array struct {
	M    int
	net  *systolic.Array
	pes  []*pe
	d    Dist
	sink int
}

// New builds the array for reference series y.
func New(y []float64, d Dist) (*Array, error) {
	if len(y) == 0 {
		return nil, fmt.Errorf("dtw: empty reference series")
	}
	if d == nil {
		d = AbsDist
	}
	a := &Array{M: len(y), d: d}
	net := &systolic.Array{}
	for j, yv := range y {
		p := &pe{j: j, y: yv, d: d, prevOwn: math.Inf(1)}
		a.pes = append(a.pes, p)
		net.PEs = append(net.PEs, p)
	}
	a.net = net
	return a, nil
}

// Match streams query series x through the array and returns the DTW
// distance. The run takes n + m - 1 cycles.
func (a *Array) Match(x []float64, goroutines bool) (float64, int, error) {
	if len(x) == 0 {
		return 0, 0, fmt.Errorf("dtw: empty query series")
	}
	a.net.Wires = a.wires(x)
	a.net.Reset()
	cycles := len(x) + a.M - 1
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = a.net.RunGoroutines(cycles)
	} else {
		res, err = a.net.RunLockstep(cycles, nil)
	}
	if err != nil {
		return 0, 0, err
	}
	// The final value exits PE m-1 at cycle (n-1)+(m-1).
	var out float64 = math.NaN()
	for _, rec := range res.Sunk[a.sink] {
		if rec.Token.Valid && rec.Cycle == cycles-1 {
			out = rec.Token.W
		}
	}
	if math.IsNaN(out) {
		return 0, 0, fmt.Errorf("dtw: result token not observed")
	}
	return out, cycles, nil
}

// wires builds the per-run wiring: the query feed and the column chain.
func (a *Array) wires(x []float64) []systolic.Wire {
	xcopy := append([]float64(nil), x...)
	var ws []systolic.Wire
	ws = append(ws, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0},
		Source: func(t int) systolic.Token {
			if t < len(xcopy) {
				// Left boundary: D(i, -1) = +inf (no predecessor column).
				return systolic.Token{V: xcopy[t], W: math.Inf(1), Ctl: t, Valid: true}
			}
			return systolic.Bubble()
		},
	})
	for j := 0; j+1 < a.M; j++ {
		ws = append(ws, systolic.Wire{
			From: systolic.Endpoint{PE: j, Port: 0},
			To:   systolic.Endpoint{PE: j + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	a.sink = len(ws)
	ws = append(ws, systolic.Wire{
		From: systolic.Endpoint{PE: a.M - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	return ws
}

// MatchBank matches one query against a bank of reference templates, one
// systolic array per template running concurrently — the speech-
// recognition deployment the paper's Section 1 citations target (each
// template resident in hardware, utterances streamed past all of them).
// It returns the index of the best-matching template and its distance.
func MatchBank(templates [][]float64, x []float64, d Dist) (best int, dist float64, err error) {
	if len(templates) == 0 {
		return 0, 0, fmt.Errorf("dtw: empty template bank")
	}
	type result struct {
		idx  int
		dist float64
		err  error
	}
	results := make(chan result, len(templates))
	for i, y := range templates {
		go func(i int, y []float64) {
			arr, err := New(y, d)
			if err != nil {
				results <- result{i, 0, err}
				return
			}
			v, _, err := arr.Match(x, false)
			results <- result{i, v, err}
		}(i, y)
	}
	best, dist = -1, math.Inf(1)
	for range templates {
		r := <-results
		if r.err != nil {
			err = r.err
			continue
		}
		if r.dist < dist {
			best, dist = r.idx, r.dist
		}
	}
	if err != nil {
		return 0, 0, err
	}
	return best, dist, nil
}
