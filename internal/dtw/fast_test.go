package dtw

import (
	"math/rand"
	"testing"
)

// TestSolveTiledBitwiseVsSequential sweeps tile sizes (including the
// degenerate 1×1 tiling and a single full-lattice tile) over a grid of
// lattice shapes (including 1×1, 1×m, n×1, tile-aligned and ragged) and
// requires bitwise agreement with Sequential for both named metrics and
// a func-valued metric.
func TestSolveTiledBitwiseVsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {5, 5}, {64, 64}, {65, 63}, {1, 200}, {130, 3}, {129, 257}}
	tiles := []int{1, 7, 64, 0, 1 << 20} // 0 = default, 1<<20 = one full tile
	dists := map[string]Dist{"abs": AbsDist, "sq": SqDist}
	for _, sh := range shapes {
		x, y := randSeries(rng, sh[0]), randSeries(rng, sh[1])
		for name, d := range dists {
			want, err := Sequential(x, y, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, T := range tiles {
				got, err := SolveTiled(x, y, d, T)
				if err != nil {
					t.Fatalf("%v %s T=%d: %v", sh, name, T, err)
				}
				if got != want {
					t.Fatalf("%v %s T=%d: tiled %v != sequential %v", sh, name, T, got, want)
				}
			}
		}
		// The monomorphized Abs op (nil Dist) must equal the func path.
		want, _ := Sequential(x, y, nil)
		got, err := SolveFast(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: SolveFast(nil) %v != Sequential %v", sh, got, want)
		}
	}
}

func TestSolveFastEmptySeries(t *testing.T) {
	if _, err := SolveFast(nil, []float64{1}, nil); err == nil {
		t.Fatal("empty x accepted")
	}
	if _, err := SolveFast([]float64{1}, nil, nil); err == nil {
		t.Fatal("empty y accepted")
	}
}

func TestSweepBatchFastMatchesSweepBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	y := randSeries(rng, 33)
	for _, b := range []int{1, 2, 7} {
		pairs := make([]Pair, b)
		for i := range pairs {
			pairs[i] = Pair{X: randSeries(rng, 21), Y: y}
		}
		want, wc, err := SweepBatch(pairs, AbsDist)
		if err != nil {
			t.Fatal(err)
		}
		got, gc, err := SweepBatchFast(pairs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gc != wc {
			t.Fatalf("b=%d: cycles %d != %d", b, gc, wc)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("b=%d i=%d: %v != %v", b, i, got[i], want[i])
			}
		}
	}
	// Shape mismatches fail the whole batch, like SweepBatch.
	if _, _, err := SweepBatchFast([]Pair{{X: y, Y: y}, {X: y[:5], Y: y}}, nil); err == nil {
		t.Fatal("mismatched batch accepted")
	}
}

// TestSolveFastZeroAllocSteadyState is the tentpole's allocation gate
// for the DTW kernel: repeated same-shape solves on a warm per-shape
// arena must not touch the allocator.
func TestSolveFastZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(11))
	x, y := randSeries(rng, 200), randSeries(rng, 150)
	if _, err := SolveFast(x, y, nil); err != nil { // warm the shape bucket
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := SolveFast(x, y, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveFast allocates %v objects/op steady-state, want 0", allocs)
	}
}

func TestSweepBatchFastIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(12))
	pairs := []Pair{
		{X: randSeries(rng, 40), Y: randSeries(rng, 40)},
		{X: randSeries(rng, 40)},
	}
	pairs[1].Y = pairs[0].Y
	dists := make([]float64, len(pairs))
	if _, err := SweepBatchFastInto(dists, pairs, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := SweepBatchFastInto(dists, pairs, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SweepBatchFastInto allocates %v objects/op steady-state, want 0", allocs)
	}
}

func BenchmarkDTWSequential256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x, y := randSeries(rng, 256), randSeries(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sequential(x, y, AbsDist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWSolveFast256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x, y := randSeries(rng, 256), randSeries(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFast(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWArray256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x, y := randSeries(rng, 256), randSeries(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arr, err := New(y, AbsDist)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := arr.Match(x, false); err != nil {
			b.Fatal(err)
		}
	}
}
