package workload

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/fbarray"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestAllWorkloadsValidAndSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range Names() {
		p, err := ByName(name, rng, 5, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid problem: %v", name, err)
		}
		// Costs must be finite and non-negative so min-plus DP applies.
		for _, xs := range p.Values {
			for _, x := range xs {
				for _, ys := range p.Values {
					for _, y := range ys {
						c := p.F(x, y)
						if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
							t.Fatalf("%s: cost f(%v,%v) = %v", name, x, y, c)
						}
					}
				}
			}
		}
		// Design 3 must agree with the baseline on every workload.
		res, err := fbarray.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := p.Solve(mp); math.Abs(res.Cost-want) > 1e-9 {
			t.Errorf("%s: Design 3 %v != baseline %v", name, res.Cost, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", rand.New(rand.NewSource(1)), 3, 3); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTrafficCircularDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := TrafficControl(rng, 2, 2, 90, 12)
	// Offset exactly `travel` later costs zero.
	if c := p.F(10, 22); c > 1e-9 {
		t.Errorf("aligned progression cost %v, want 0", c)
	}
	// Circular wraparound: 89 -> 11 is 12 seconds later mod 90.
	if c := p.F(89, 11); c > 1e-9 {
		t.Errorf("wraparound progression cost %v, want 0", c)
	}
	// Symmetric distance is bounded by cycle/2.
	for x := 0.0; x < 90; x += 7 {
		for y := 0.0; y < 90; y += 11 {
			if c := p.F(x, y); c > 45+1e-9 {
				t.Errorf("circular distance f(%v,%v) = %v > 45", x, y, c)
			}
		}
	}
}

func TestCircuitQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := CircuitDesign(rng, 2, 2, 5, 10)
	if c := p.F(3, 1); math.Abs(c-0.4) > 1e-12 {
		t.Errorf("power = %v, want (3-1)^2/10 = 0.4", c)
	}
}

func TestFluidAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := FluidFlow(rng, 2, 2, 100)
	if p.F(10, 5) <= p.F(5, 10) {
		t.Error("pressure drops must cost more than rises")
	}
}

func TestSchedulingAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Scheduling(rng, 2, 2, 10)
	if p.F(8, 4) <= p.F(4, 8) {
		t.Error("overload must cost more than idle slack")
	}
}

func TestMatrixChainDims(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dims, err := MatrixChainDims(rng, 10, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 11 {
		t.Fatalf("len = %d, want 11", len(dims))
	}
	for _, d := range dims {
		if d < 2 || d > 30 {
			t.Errorf("dim %d outside [2,30]", d)
		}
	}
	if _, err := MatrixChainDims(rng, 0, 2, 30); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MatrixChainDims(rng, 3, 5, 2); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := TrafficControl(rand.New(rand.NewSource(7)), 4, 3, 90, 12)
	b := TrafficControl(rand.New(rand.NewSource(7)), 4, 3, 90, 12)
	for k := range a.Values {
		for i := range a.Values[k] {
			if a.Values[k][i] != b.Values[k][i] {
				t.Fatal("same seed produced different workloads")
			}
		}
	}
}
