// Package workload generates the application workloads Section 2.2 of the
// paper uses to motivate serial DP formulations: traffic-signal timing,
// circuit (voltage) design, fluid-flow pump scheduling, and task
// scheduling. Each generator returns a node-valued multistage problem
// (equation (4)) with a domain-appropriate cost function, suitable for the
// Design-3 feedback array and, after expansion, for Designs 1-2 and the
// baselines.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"systolicdp/internal/multistage"
)

// TrafficControl models N consecutive signalised intersections; stage k's
// values are candidate green-phase offsets (seconds) for light k, and the
// edge cost is the timing mismatch |t_{k+1} - t_k - travel| penalising
// departures from a smooth progression with the given travel time.
func TrafficControl(rng *rand.Rand, lights, offsets int, cycle, travel float64) *multistage.NodeValued {
	p := &multistage.NodeValued{
		F: func(x, y float64) float64 {
			d := math.Mod(y-x-travel, cycle)
			if d < 0 {
				d += cycle
			}
			return math.Min(d, cycle-d) // circular timing difference
		},
	}
	for k := 0; k < lights; k++ {
		vs := make([]float64, offsets)
		for i := range vs {
			vs[i] = rng.Float64() * cycle
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// CircuitDesign models a chain of N circuit points; stage k's values are
// candidate node voltages, and the edge cost is the power dissipated
// between adjacent points, (V_k - V_{k+1})^2 / R.
func CircuitDesign(rng *rand.Rand, points, levels int, vmax, resistance float64) *multistage.NodeValued {
	p := &multistage.NodeValued{
		F: func(x, y float64) float64 { return (x - y) * (x - y) / resistance },
	}
	for k := 0; k < points; k++ {
		vs := make([]float64, levels)
		for i := range vs {
			vs[i] = rng.Float64() * vmax
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// FluidFlow models N pumps in series; stage k's values are candidate
// pressures, and the edge cost penalises pressure drops (which stall the
// flow) much more than rises (which cost pump energy).
func FluidFlow(rng *rand.Rand, pumps, levels int, pmax float64) *multistage.NodeValued {
	p := &multistage.NodeValued{
		F: func(x, y float64) float64 {
			if y < x {
				return 5 * (x - y) // stall penalty
			}
			return y - x // pumping energy
		},
	}
	for k := 0; k < pumps; k++ {
		vs := make([]float64, levels)
		for i := range vs {
			vs[i] = rng.Float64() * pmax
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// Scheduling models N pipelined tasks; stage k's values are candidate
// service times for task k, and the edge cost is the queueing delay when a
// task's service time exceeds its successor's capacity.
func Scheduling(rng *rand.Rand, tasks, options int, tmax float64) *multistage.NodeValued {
	p := &multistage.NodeValued{
		F: func(x, y float64) float64 {
			slack := y - x
			if slack < 0 {
				return -2 * slack // overload delay
			}
			return slack * 0.1 // idle cost
		},
	}
	for k := 0; k < tasks; k++ {
		vs := make([]float64, options)
		for i := range vs {
			vs[i] = rng.Float64() * tmax
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// CurveDetection models the Clarke & Dyer application the paper cites in
// Section 1 (a systolic array for curve and line detection by DP): stage
// k's values are candidate edge-point row positions in image column k,
// and the edge cost penalises curvature — large jumps between adjacent
// columns — quadratically, so the optimal path traces the smoothest
// curve through the candidates.
func CurveDetection(rng *rand.Rand, columns, candidates int, height float64) *multistage.NodeValued {
	p := &multistage.NodeValued{
		F: func(x, y float64) float64 { return (x - y) * (x - y) },
	}
	// Candidates cluster around a drifting curve plus outliers.
	center := height / 2
	for k := 0; k < columns; k++ {
		center += (rng.Float64() - 0.5) * height / 8
		if center < 0 {
			center = 0
		}
		if center > height {
			center = height
		}
		vs := make([]float64, candidates)
		for i := range vs {
			if i == 0 {
				vs[i] = center + (rng.Float64()-0.5)*height/16 // true curve point
			} else {
				vs[i] = rng.Float64() * height // clutter
			}
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

// MatrixChainDims generates random matrix-chain dimensions r_0..r_n in
// [lo, hi] for the ordering problem of Section 6.2.
func MatrixChainDims(rng *rand.Rand, n, lo, hi int) ([]int, error) {
	if n < 1 || lo < 1 || hi < lo {
		return nil, fmt.Errorf("workload: bad chain parameters n=%d lo=%d hi=%d", n, lo, hi)
	}
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = lo + rng.Intn(hi-lo+1)
	}
	return dims, nil
}

// ByName returns a named node-valued workload generator for the CLI
// tools: one of "traffic", "circuit", "fluid", "scheduling", "curve".
func ByName(name string, rng *rand.Rand, stages, values int) (*multistage.NodeValued, error) {
	switch name {
	case "traffic":
		return TrafficControl(rng, stages, values, 90, 12), nil
	case "circuit":
		return CircuitDesign(rng, stages, values, 5, 10), nil
	case "fluid":
		return FluidFlow(rng, stages, values, 100), nil
	case "scheduling":
		return Scheduling(rng, stages, values, 10), nil
	case "curve":
		return CurveDetection(rng, stages, values, 64), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// Names lists the available node-valued workloads.
func Names() []string {
	return []string{"traffic", "circuit", "fluid", "scheduling", "curve"}
}
