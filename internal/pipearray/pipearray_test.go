package pipearray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

var mp = semiring.MinPlus{}

func randomChain(rng *rand.Rand, k, m int) ([]*matrix.Matrix, []float64) {
	ms := make([]*matrix.Matrix, k)
	for i := range ms {
		ms[i] = matrix.Random(rng, m, m, 0, 10)
	}
	v := make([]float64, m)
	for i := range v {
		v[i] = rng.Float64() * 10
	}
	return ms, v
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestSingleMatrixVector(t *testing.T) {
	// One type-X phase: result must equal M.v and sit in the R registers.
	m := matrix.FromRows([][]float64{
		{1, 5, 9},
		{2, 0, 4},
		{7, 3, 8},
	})
	v := []float64{2, 1, 0}
	got, err := Solve([]*matrix.Matrix{m}, v)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceSolve([]*matrix.Matrix{m}, v)
	if !almostEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTwoMatrices(t *testing.T) {
	// Two phases (X then Y): results exit the last PE.
	rng := rand.New(rand.NewSource(1))
	ms, v := randomChain(rng, 2, 4)
	got, err := Solve(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceSolve(ms, v); !almostEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestChainLengthsAndWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, m := range []int{1, 2, 3, 5, 8} {
			ms, v := randomChain(rng, k, m)
			got, err := Solve(ms, v)
			if err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			if want := ReferenceSolve(ms, v); !almostEqual(got, want) {
				t.Errorf("k=%d m=%d: got %v, want %v", k, m, got, want)
			}
		}
	}
}

func TestFigure1aGraphString(t *testing.T) {
	// The A.(B.(C.D)) computation of Figure 3: a single-source single-sink
	// 5-stage graph. The first matrix is the 1xm row of source edges; the
	// last stage's costs are the initial vector D.
	rng := rand.New(rand.NewSource(3))
	inner := multistage.RandomUniform(rng, 3, 3, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	mats := g.Matrices()
	// mats = [1x3 row, 3x3, 3x3, 3x1 column]; fold the column into v.
	k := len(mats)
	v := mats[k-1].Col(0)
	got, err := Solve(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	want := multistage.SolveOptimal(mp, g)
	if len(got) != 1 || math.Abs(got[0]-want.Cost) > 1e-9 {
		t.Errorf("array result %v, optimal %v", got, want.Cost)
	}
}

func TestGoroutineRunnerMatchesLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		ms, v := randomChain(rng, 3+trial, 3)
		a1, err := New(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		lock, lres, err := a1.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := New(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		goro, gres, err := a2.Run(true)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(lock, goro) {
			t.Errorf("trial %d: lockstep %v != goroutine %v", trial, lock, goro)
		}
		for i := range lres.Busy {
			if lres.Busy[i] != gres.Busy[i] {
				t.Errorf("trial %d: busy[%d] %d vs %d", trial, i, lres.Busy[i], gres.Busy[i])
			}
		}
	}
}

func TestIterationAndWallCycleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ms, v := randomChain(rng, 4, 5)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations() != 4*5 {
		t.Errorf("Iterations = %d, want 20", a.Iterations())
	}
	if a.WallCycles() != 4*5+5-1 {
		t.Errorf("WallCycles = %d, want 24", a.WallCycles())
	}
	// Every PE is busy for exactly K*m cycles.
	_, res, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Busy {
		if b != a.Iterations() {
			t.Errorf("PE %d busy %d cycles, want %d", i, b, a.Iterations())
		}
	}
}

func TestPUApproachesEquation9(t *testing.T) {
	// For an (N+1)-stage graph, serial iterations are (N-2)m^2+m and the
	// array finishes in N*m-1 wall cycles with m PEs; measured PU must
	// match equation (9) within the skew term.
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct{ n, m int }{{4, 3}, {8, 4}, {16, 8}, {32, 8}} {
		inner := multistage.RandomUniform(rng, tc.n-1, tc.m, 1, 10)
		g := multistage.SingleSourceSink(mp, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		a, err := New(mats[:k-1], v)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := a.WallCycles(), tc.n*tc.m-1; got != want {
			t.Errorf("N=%d m=%d: wall cycles %d, want N*m-1 = %d", tc.n, tc.m, got, want)
		}
		serial := metrics.SerialItersGraph(tc.n, tc.m)
		pu := metrics.PU(serial, a.WallCycles(), tc.m)
		eq9 := metrics.PUEq9(tc.n, tc.m)
		// Measured wall time is N*m-1 vs the paper's N*m, so the measured
		// PU sits slightly above eq (9); the gap shrinks as 1/(N*m).
		if pu < eq9-1e-9 || pu-eq9 > 2.0/float64(tc.n) {
			t.Errorf("N=%d m=%d: measured PU %.4f vs eq(9) %.4f", tc.n, tc.m, pu, eq9)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, []float64{1}); err == nil {
		t.Error("empty string accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(2, 2, 0)}, nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(3, 2, 0)}, []float64{1, 2}); err == nil {
		t.Error("first matrix with too many rows accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(2, 3, 0)}, []float64{1, 2}); err == nil {
		t.Error("mis-shaped matrix accepted")
	}
	ms := []*matrix.Matrix{matrix.New(2, 2, 0), matrix.New(1, 2, 0)}
	if _, err := New(ms, []float64{1, 2}); err == nil {
		t.Error("degenerate non-first matrix accepted")
	}
}

func TestDegenerateFirstMatrix(t *testing.T) {
	// First matrix 1xm: the scalar result forms in P_1, matching the
	// paper's "shifted into P1 to form the final result".
	rng := rand.New(rand.NewSource(7))
	row := matrix.Random(rng, 1, 3, 0, 5)
	mid := matrix.Random(rng, 3, 3, 0, 5)
	v := []float64{1, 2, 3}
	got, err := Solve([]*matrix.Matrix{row, mid}, v)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceSolve([]*matrix.Matrix{row, mid}, v)
	if len(got) != 1 || !almostEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyMatchesBaseline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		ms, v := randomChain(rng, k, m)
		got, err := Solve(ms, v)
		if err != nil {
			return false
		}
		return almostEqual(got, ReferenceSolve(ms, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRerunIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ms, v := randomChain(rng, 3, 4)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r1, r2) {
		t.Errorf("rerun differs: %v vs %v", r1, r2)
	}
}

func TestRunTracedAndWireNames(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ms, v := randomChain(rng, 2, 3)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	names := a.WireNames()
	// feeds (m) + vector (1) + pipes (m-1) + feedback (1) + tie-offs (m-1) + sink (1)
	if want := 3 + 1 + 2 + 1 + 2 + 1; len(names) != want {
		t.Fatalf("WireNames has %d entries, want %d: %v", len(names), want, names)
	}
	cycles := 0
	out, res, err := a.RunTraced(func(c int, wires []systolic.Token) {
		cycles++
		if len(wires) != len(names) {
			t.Fatalf("trace saw %d wires, names %d", len(wires), len(names))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != res.Cycles {
		t.Errorf("trace called %d times, run took %d cycles", cycles, res.Cycles)
	}
	want, _, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out, want) {
		t.Errorf("traced run %v != plain run %v", out, want)
	}
	if a.InputWordsPerCycle() != 4 {
		t.Errorf("InputWordsPerCycle = %d, want 4", a.InputWordsPerCycle())
	}
}

func TestSolvePropagatesErrors(t *testing.T) {
	if _, err := Solve(nil, []float64{1}); err == nil {
		t.Error("Solve accepted empty string")
	}
}
