package pipearray

import (
	"fmt"
	"math"

	"systolicdp/internal/matrix"
	"systolicdp/internal/systolic"
)

// Section 3.2 notes that "there is no delay between feeding successive
// input matrices into the systolic array, and the processors are kept
// busy most of the time". Stream extends that property across problem
// *instances*: a batch of independent matrix-string problems of identical
// shape is fed back-to-back through one Design-1 array, sustaining one
// result vector per K'*m cycles of steady state with a single pipeline
// fill. Problems whose phase count K is odd are padded with one identity
// phase (multiplication by the semiring identity, a type-Y flush), so
// every problem ends on a moving-result phase and streams out of P_m with
// no drain stalls.

// StreamProblem is one instance: a matrix string and its initial vector,
// shaped as in New.
type StreamProblem struct {
	Ms []*matrix.Matrix
	V  []float64
}

// phase sources for P_1's moving-token multiplexer.
const (
	srcExternal = iota // the problem's input vector, fed by the host
	srcInject          // fresh result accumulators (type-Y phases)
	srcFeedback        // results of the previous phase, via P_m -> P_1
)

// phaseDesc describes one global phase of a streamed run.
type phaseDesc struct {
	typeY bool
	src   int
	feed  [][]float64 // [pe][iteration]
}

// streamPE generalises the Design-1 PE to a phase-descriptor table.
type streamPE struct {
	i, m   int
	phases []phaseDesc
	t      int
	r, a   float64
}

func (p *streamPE) NumIn() int  { return 3 }
func (p *streamPE) NumOut() int { return 1 }
func (p *streamPE) Reset() {
	p.t = 0
	p.r = math.Inf(1)
	p.a = math.Inf(1)
}

func (p *streamPE) Step(in []systolic.Token) ([]systolic.Token, bool) {
	t := p.t
	p.t++
	u := t - p.i
	if u < 0 || u >= len(p.phases)*p.m {
		return []systolic.Token{in[0]}, false
	}
	g, j := u/p.m, u%p.m
	ph := &p.phases[g]
	mov := in[0]
	if p.i == 0 {
		switch ph.src {
		case srcExternal:
			mov = in[0]
		case srcInject:
			mov = systolic.Token{V: math.Inf(1), Tag: j, Valid: true}
		case srcFeedback:
			mov = in[2]
		}
	}
	e := ph.feed[p.i][j]
	if !ph.typeY {
		p.a = math.Min(p.a, e+mov.V)
		if j == p.m-1 {
			p.r = p.a
			p.a = math.Inf(1)
		}
		return []systolic.Token{mov}, true
	}
	mov.V = math.Min(mov.V, e+p.r)
	return []systolic.Token{mov}, true
}

// Stream is a Design-1 array configured for a batch of problems.
type Stream struct {
	M          int
	KPadded    int // phases per problem after identity padding (even)
	B          int // batch size
	rows       int
	net        *systolic.Array
	sinkIdx    int
	lastPhases []int // global index of each problem's final phase
}

// NewStream builds a streamed Design-1 array. All problems must share the
// vector length m, the phase count K, and the first-matrix row count.
func NewStream(problems []StreamProblem) (*Stream, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("pipearray: empty batch")
	}
	m := len(problems[0].V)
	k := len(problems[0].Ms)
	if k == 0 || m == 0 {
		return nil, fmt.Errorf("pipearray: empty problem shape")
	}
	rows := problems[0].Ms[0].Rows
	for bi, pr := range problems {
		if len(pr.V) != m || len(pr.Ms) != k || pr.Ms[0].Rows != rows {
			return nil, fmt.Errorf("pipearray: problem %d shape differs from problem 0", bi)
		}
		for idx, mm := range pr.Ms {
			wantRows := m
			if idx == 0 {
				if mm.Rows > m {
					return nil, fmt.Errorf("pipearray: problem %d first matrix has %d rows > m=%d", bi, mm.Rows, m)
				}
				wantRows = mm.Rows
			}
			if mm.Rows != wantRows || mm.Cols != m {
				return nil, fmt.Errorf("pipearray: problem %d matrix %d is %dx%d", bi, idx, mm.Rows, mm.Cols)
			}
		}
	}
	kp := k
	if kp%2 == 1 {
		kp++ // identity-phase padding so results always stream out
	}
	inf := math.Inf(1)
	identityFeed := func() [][]float64 {
		fv := make([][]float64, m)
		for i := 0; i < m; i++ {
			fv[i] = make([]float64, m)
			for j := 0; j < m; j++ {
				if i == j {
					fv[i][j] = 0 // (MIN,+) multiplicative identity
				} else {
					fv[i][j] = inf
				}
			}
		}
		return fv
	}

	s := &Stream{M: m, KPadded: kp, B: len(problems), rows: rows}
	var phases []phaseDesc
	for bi, pr := range problems {
		for ph := 0; ph < k; ph++ {
			src := pr.Ms[k-1-ph]
			typeY := ph%2 == 1
			fv := make([][]float64, m)
			for i := 0; i < m; i++ {
				fv[i] = make([]float64, m)
				for j := 0; j < m; j++ {
					var row, col int
					if typeY {
						row, col = j, i
					} else {
						row, col = i, j
					}
					if row < src.Rows {
						fv[i][j] = src.At(row, col)
					} else {
						fv[i][j] = inf
					}
				}
			}
			d := phaseDesc{typeY: typeY, feed: fv}
			switch {
			case ph == 0:
				d.src = srcExternal
			case typeY:
				d.src = srcInject
			default:
				d.src = srcFeedback
			}
			phases = append(phases, d)
		}
		if kp > k {
			phases = append(phases, phaseDesc{typeY: true, src: srcInject, feed: identityFeed()})
		}
		s.lastPhases = append(s.lastPhases, (bi+1)*kp-1)
	}

	net := &systolic.Array{}
	pes := make([]*streamPE, m)
	for i := 0; i < m; i++ {
		pes[i] = &streamPE{i: i, m: m, phases: phases, r: inf, a: inf}
		net.PEs = append(net.PEs, pes[i])
	}
	// Matrix feeds per PE.
	for i := 0; i < m; i++ {
		i := i
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: systolic.External, Port: 0},
			To:   systolic.Endpoint{PE: i, Port: 1},
			Source: func(t int) systolic.Token {
				u := t - i
				if u < 0 || u >= len(phases)*m {
					return systolic.Bubble()
				}
				return systolic.Token{V: phases[u/m].feed[i][u%m], Valid: true}
			},
		})
	}
	// External vector input: problem b's vector during its first phase.
	vs := make([][]float64, len(problems))
	for bi, pr := range problems {
		vs[bi] = append([]float64(nil), pr.V...)
	}
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0},
		Source: func(t int) systolic.Token {
			g, j := t/m, t%m
			if g < len(phases) && g%kp == 0 {
				return systolic.Token{V: vs[g/kp][j], Tag: j, Valid: true}
			}
			return systolic.Bubble()
		},
	})
	for i := 0; i+1 < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: i, Port: 0},
			To:   systolic.Endpoint{PE: i + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: m - 1, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 2},
		Init: systolic.Bubble(),
	})
	for i := 1; i < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From:   systolic.Endpoint{PE: systolic.External, Port: 0},
			To:     systolic.Endpoint{PE: i, Port: 2},
			Source: func(int) systolic.Token { return systolic.Bubble() },
		})
	}
	s.sinkIdx = len(net.Wires)
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: m - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	s.net = net
	return s, nil
}

// WallCycles returns the total cycles for the whole batch: B*K'*m
// iterations plus the single pipeline fill of m-1 cycles — versus
// B*(K'*m + m - 1) for separate runs.
func (s *Stream) WallCycles() int { return s.B*s.KPadded*s.M + s.M - 1 }

// SetParallelism sets the lock-step engine's compute-phase worker count
// for this stream (see systolic.Array.Parallelism).
func (s *Stream) SetParallelism(p int) { s.net.Parallelism = p }

// SetParallelThreshold sets the minimum PE count at which the parallel
// compute phase engages; 0 keeps the engine default, 1 forces it on.
func (s *Stream) SetParallelThreshold(n int) { s.net.ParallelThreshold = n }

// LockstepWorkers reports the compute-phase worker count a lock-step run
// will use after threshold gating and clamping.
func (s *Stream) LockstepWorkers() int { return s.net.LockstepWorkers() }

// Run executes the batch and returns each problem's result vector (live
// rows only), in order.
func (s *Stream) Run(goroutines bool) ([][]float64, error) {
	out, _, err := s.RunObserved(goroutines)
	return out, err
}

// RunObserved is Run returning the underlying engine result as well, so
// callers can report measured utilization and cycle counts for the whole
// streamed batch.
func (s *Stream) RunObserved(goroutines bool) ([][]float64, *systolic.Result, error) {
	s.net.Reset()
	cycles := s.WallCycles() + 1
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = s.net.RunGoroutines(cycles)
	} else {
		res, err = s.net.RunLockstep(cycles, nil)
	}
	if err != nil {
		return nil, nil, err
	}
	out := make([][]float64, s.B)
	for bi := range out {
		out[bi] = make([]float64, s.M)
	}
	for _, rec := range res.Sunk[s.sinkIdx] {
		if !rec.Token.Valid {
			continue
		}
		// Result y_j of the problem whose final phase is g exits P_m at
		// cycle g*m + j + m - 1.
		u := rec.Cycle - (s.M - 1)
		if u < 0 {
			continue
		}
		g, j := u/s.M, u%s.M
		for bi, last := range s.lastPhases {
			if g == last {
				out[bi][j] = rec.Token.V
			}
		}
	}
	for bi := range out {
		out[bi] = out[bi][:s.rows]
	}
	return out, res, nil
}
