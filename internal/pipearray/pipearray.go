// Package pipearray implements Design 1 of the paper (Figure 3): a linear
// systolic array of m processing elements that evaluates a string of
// (MIN,+) matrix products A.(B.(C.D)) — i.e. a monadic-serial DP problem —
// with no broadcasts.
//
// The array alternates between two phase types, exactly as controlled by
// the paper's ODD/MOVE/FIRST signals:
//
//   - type X (ODD=1): the input vector is shifted through the pipeline
//     while each PE accumulates one element of the result vector in its
//     stationary accumulator A_i; at the phase boundary MOVE transfers
//     A_i into R_i;
//   - type Y (ODD=0): the input vector is stationary in the R_i registers
//     while result accumulators are shifted through the pipeline, each PE
//     folding in one term as the accumulator passes; finished results exit
//     P_m and feed back into P_1 as the moving input of the next phase.
//
// PE i processes local iteration (k, j) at global cycle k*m + j + i (the
// one-cycle control skew between adjacent PEs noted in the paper), fed the
// matrix element M_k[i][j] in type-X phases and M_k[j][i] (the transposed
// column feed of Figure 3) in type-Y phases.
//
// Processing K matrices takes K*m iterations per PE and K*m + m - 1 wall
// cycles including skew; for an (N+1)-stage graph (K = N-1 matrices after
// the last stage's costs become the initial vector) that is N*m - 1 wall
// cycles, the paper's N*m iteration count.
package pipearray

import (
	"fmt"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

// Array is a configured Design-1 systolic array for one matrix string.
type Array struct {
	M       int // number of PEs (= vector length)
	K       int // number of matrix phases
	rows    int // rows of the leftmost matrix (= live entries of the result)
	net     *systolic.Array
	pes     []*pe
	sinkIdx int
	s       semiring.Comparative
}

// pe is one Design-1 processing element (Figure 3(b)): register R, the
// stationary-vector element, and accumulator A. The comparison unit is
// semiring-generic: (MIN,+) for shortest paths, (MAX,+) for longest.
type pe struct {
	i, m, k int // index, array width, number of phases
	t       int // local cycle counter
	r, a    float64
	s       semiring.Comparative
}

func (p *pe) NumIn() int  { return 3 } // 0: pipe, 1: matrix feed, 2: feedback (P_1 only)
func (p *pe) NumOut() int { return 1 }

func (p *pe) Reset() {
	p.t = 0
	p.r = p.s.Zero()
	p.a = p.s.Zero()
}

func (p *pe) Step(in []systolic.Token) ([]systolic.Token, bool) {
	t := p.t
	p.t++
	u := t - p.i
	if u < 0 || u >= p.k*p.m {
		// Inactive (pipeline fill or drain): forward the pipe token so
		// type-Y results can travel to the sink.
		return []systolic.Token{in[0]}, false
	}
	k, j := u/p.m, u%p.m
	// Select the moving token. P_1 multiplexes between the external
	// source (first matrix), freshly injected accumulators (type-Y
	// phases), and the feedback path from P_m (later type-X phases); all
	// other PEs take the pipe input.
	mov := in[0]
	if p.i == 0 {
		switch {
		case k == 0:
			mov = in[0] // external input vector element v_j
		case k%2 == 1:
			// Inject a fresh result accumulator, initialised to the
			// semiring zero (+inf for (MIN,+)), tagged with its index.
			mov = systolic.Token{V: p.s.Zero(), Tag: j, Valid: true}
		default:
			mov = in[2] // feedback: result of the previous type-Y phase
		}
	}
	e := in[1].V // matrix element for this iteration
	if k%2 == 0 {
		// Type X: moving input, stationary accumulator.
		p.a = p.s.Add(p.a, p.s.Mul(e, mov.V))
		if j == p.m-1 {
			// MOVE: the accumulated result becomes the stationary input
			// of the next (type-Y) phase.
			p.r = p.a
			p.a = p.s.Zero()
		}
		return []systolic.Token{mov}, true
	}
	// Type Y: stationary input in R, moving accumulator.
	mov.V = p.s.Add(mov.V, p.s.Mul(e, p.r))
	return []systolic.Token{mov}, true
}

// New builds a Design-1 array over the (MIN,+) semiring computing
// ms[0].(ms[1].(...(ms[K-1].v))). Every matrix must be m x m where
// m = len(v), except ms[0], which may be r x m with r <= m (the
// degenerate first matrix of a single-source graph); it is padded with
// semiring-Zero rows. The result has len(v) entries of which the first
// rows(ms[0]) are live.
func New(ms []*matrix.Matrix, v []float64) (*Array, error) {
	return NewSemiring(semiring.MinPlus{}, ms, v)
}

// NewSemiring builds a Design-1 array over any comparative semiring:
// (MAX,+) turns the search into a longest-path evaluation, exactly the
// "maximization (or minimization)" latitude Section 2 allows.
func NewSemiring(s semiring.Comparative, ms []*matrix.Matrix, v []float64) (*Array, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("pipearray: empty matrix string")
	}
	m := len(v)
	if m == 0 {
		return nil, fmt.Errorf("pipearray: empty input vector")
	}
	for idx, mm := range ms {
		wantRows := m
		if idx == 0 {
			if mm.Rows > m {
				return nil, fmt.Errorf("pipearray: first matrix has %d rows > m=%d", mm.Rows, m)
			}
			wantRows = mm.Rows
		}
		if mm.Rows != wantRows || mm.Cols != m {
			return nil, fmt.Errorf("pipearray: matrix %d is %dx%d, want %dx%d", idx, mm.Rows, mm.Cols, wantRows, m)
		}
	}
	k := len(ms)
	// feedVal[phase][i][j]: element fed to PE i at local iteration j.
	// Phase p multiplies the (p+1)-th matrix from the right: ms[k-1-p].
	inf := s.Zero()
	feedVal := make([][][]float64, k)
	for ph := 0; ph < k; ph++ {
		src := ms[k-1-ph]
		fv := make([][]float64, m)
		for i := 0; i < m; i++ {
			fv[i] = make([]float64, m)
			for j := 0; j < m; j++ {
				var row, col int
				if ph%2 == 0 {
					row, col = i, j // type X: row feed
				} else {
					row, col = j, i // type Y: transposed column feed
				}
				if row < src.Rows {
					fv[i][j] = src.At(row, col)
				} else {
					fv[i][j] = inf // padding rows of a degenerate matrix
				}
			}
		}
		feedVal[ph] = fv
	}

	a := &Array{M: m, K: k, rows: ms[0].Rows, s: s}
	net := &systolic.Array{}
	for i := 0; i < m; i++ {
		p := &pe{i: i, m: m, k: k, r: inf, a: inf, s: s}
		a.pes = append(a.pes, p)
		net.PEs = append(net.PEs, p)
	}
	// Matrix feeds: PE i active at cycles [i, k*m+i).
	for i := 0; i < m; i++ {
		i := i
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: systolic.External, Port: 0},
			To:   systolic.Endpoint{PE: i, Port: 1},
			Source: func(t int) systolic.Token {
				u := t - i
				if u < 0 || u >= k*m {
					return systolic.Bubble()
				}
				return systolic.Token{V: feedVal[u/m][i][u%m], Valid: true}
			},
		})
	}
	// P_1 external input: the initial vector during phase 0.
	vcopy := append([]float64(nil), v...)
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0},
		Source: func(t int) systolic.Token {
			if t < len(vcopy) {
				return systolic.Token{V: vcopy[t], Tag: t, Valid: true}
			}
			return systolic.Bubble()
		},
	})
	// Pipe wires P_i -> P_{i+1}.
	for i := 0; i+1 < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: i, Port: 0},
			To:   systolic.Endpoint{PE: i + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	// Feedback P_m -> P_1 (port 2) and the external sink.
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: m - 1, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 2},
		Init: systolic.Bubble(),
	})
	// Unused feedback ports of P_2..P_m are tied off.
	for i := 1; i < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From:   systolic.Endpoint{PE: systolic.External, Port: 0},
			To:     systolic.Endpoint{PE: i, Port: 2},
			Source: func(int) systolic.Token { return systolic.Bubble() },
		})
	}
	a.sinkIdx = len(net.Wires)
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: m - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	a.net = net
	return a, nil
}

// SetParallelism sets the lock-step engine's compute-phase worker count
// (see systolic.Array.Parallelism): <=1 runs sequentially, >1 shards the
// per-cycle PE loop, negative uses GOMAXPROCS.
func (a *Array) SetParallelism(p int) { a.net.Parallelism = p }

// SetParallelThreshold sets the minimum PE count at which the parallel
// compute phase engages (see systolic.Array.ParallelThreshold); 0 keeps
// the engine default, 1 forces it on.
func (a *Array) SetParallelThreshold(n int) { a.net.ParallelThreshold = n }

// LockstepWorkers reports the compute-phase worker count a lock-step run
// will use after threshold gating and clamping.
func (a *Array) LockstepWorkers() int { return a.net.LockstepWorkers() }

// Iterations returns the paper's per-PE iteration count K*m.
func (a *Array) Iterations() int { return a.K * a.M }

// WallCycles returns the wall-clock cycles until the last result is
// available: K*m iterations plus m-1 cycles of pipeline skew.
func (a *Array) WallCycles() int { return a.K*a.M + a.M - 1 }

// Run executes the array and returns the result vector (padded entries
// removed) together with the engine run result. If goroutines is true the
// goroutine-per-PE runner is used, otherwise the lock-step runner. The
// array is re-runnable: every run resets the network first, so repeated
// runs (any runner) are bit-identical.
func (a *Array) Run(goroutines bool) ([]float64, *systolic.Result, error) {
	return a.RunObserved(goroutines, nil, nil)
}

// RunObserved is Run with observability hooks: peTrace receives every
// PE's busy bit each cycle (both runners; see systolic.PETrace for the
// concurrency contract), and wireTrace receives per-cycle wire snapshots
// (lock-step only — the goroutine runner has no global latch instant, so
// passing a wireTrace with goroutines=true is an error).
func (a *Array) RunObserved(goroutines bool, wireTrace func(cycle int, wires []systolic.Token), peTrace systolic.PETrace) ([]float64, *systolic.Result, error) {
	if goroutines && wireTrace != nil {
		return nil, nil, fmt.Errorf("pipearray: wire traces require the lock-step runner")
	}
	a.net.Reset()
	cycles := a.WallCycles() + 1
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = a.net.RunGoroutinesObserved(cycles, peTrace)
	} else {
		res, err = a.net.RunLockstepObserved(cycles, wireTrace, peTrace)
	}
	if err != nil {
		return nil, nil, err
	}
	return a.decode(res), res, nil
}

// ObservedCycles reports the number of cycles an observed run executes,
// for sizing cycle recorders.
func (a *Array) ObservedCycles() int { return a.WallCycles() + 1 }

// decode extracts the result vector from a finished run.
func (a *Array) decode(res *systolic.Result) []float64 {
	out := make([]float64, a.M)
	if (a.K-1)%2 == 1 {
		// Final phase was type Y: results exited P_m tagged with their
		// element index.
		lastPhase := a.K - 1
		for _, rec := range res.Sunk[a.sinkIdx] {
			// y_j exits P_m at cycle lastPhase*m + j + m - 1.
			j := rec.Cycle - lastPhase*a.M - (a.M - 1)
			if j >= 0 && j < a.M && rec.Token.Valid {
				out[j] = rec.Token.V
			}
		}
	} else {
		// Final phase was type X: results are stationary in the
		// accumulators, which MOVE transferred into the R registers at the
		// phase boundary (the hardware would shift them out in m further
		// cycles; the host reads them directly here).
		for i, p := range a.pes {
			out[i] = p.r
		}
	}
	return out[:a.rows]
}

// Solve is a convenience wrapper: build, run lock-step, and return the
// result vector.
func Solve(ms []*matrix.Matrix, v []float64) ([]float64, error) {
	a, err := New(ms, v)
	if err != nil {
		return nil, err
	}
	out, _, err := a.Run(false)
	return out, err
}

// ReferenceSolve computes the same product with the sequential baseline.
func ReferenceSolve(ms []*matrix.Matrix, v []float64) []float64 {
	return matrix.ChainVec(semiring.MinPlus{}, ms, v)
}

// InputWordsPerCycle reports the external input bandwidth the design
// needs: m matrix-element streams plus the vector input. Section 3.2
// identifies this I/O cost as the bottleneck Design 3 removes.
func (a *Array) InputWordsPerCycle() int { return a.M + 1 }

// RunTraced is Run with a lock-step trace callback (see the trace
// package) invoked after every cycle with the latched wire values.
func (a *Array) RunTraced(trace func(cycle int, wires []systolic.Token)) ([]float64, *systolic.Result, error) {
	return a.RunObserved(false, trace, nil)
}

// WireNames labels the array's wires for trace rendering: matrix feeds,
// the vector input, the pipe stages, the feedback line, tie-offs, and the
// sink.
func (a *Array) WireNames() []string {
	names := make([]string, 0, len(a.net.Wires))
	for i := 0; i < a.M; i++ {
		names = append(names, fmt.Sprintf("feed>P%d", i+1))
	}
	names = append(names, "v>P1")
	for i := 0; i+1 < a.M; i++ {
		names = append(names, fmt.Sprintf("P%d>P%d", i+1, i+2))
	}
	names = append(names, fmt.Sprintf("P%d>P1 fb", a.M))
	for i := 1; i < a.M; i++ {
		names = append(names, fmt.Sprintf("tie>P%d", i+1))
	}
	names = append(names, fmt.Sprintf("P%d>out", a.M))
	return names
}
