package pipearray

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// The arrays are semiring-generic: under (MAX,+) they evaluate
// longest-path / maximum-reward problems, the "maximization (or
// minimization)" latitude of Section 2.

func TestMaxPlusMatchesBaseline(t *testing.T) {
	s := semiring.MaxPlus{}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ k, m int }{{1, 3}, {2, 4}, {3, 3}, {5, 2}} {
		ms, v := randomChain(rng, tc.k, tc.m)
		a, err := NewSemiring(s, ms, v)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := a.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.ChainVec(s, ms, v)
		if !almostEqual(got, want) {
			t.Errorf("k=%d m=%d: got %v, want %v", tc.k, tc.m, got, want)
		}
	}
}

func TestMaxPlusGoroutinesMatch(t *testing.T) {
	s := semiring.MaxPlus{}
	rng := rand.New(rand.NewSource(2))
	ms, v := randomChain(rng, 4, 3)
	a, err := NewSemiring(s, ms, v)
	if err != nil {
		t.Fatal(err)
	}
	lock, _, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	goro, _, err := a.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lock, goro) {
		t.Errorf("lockstep %v != goroutines %v", lock, goro)
	}
}

func TestMaxPlusLongestBeatsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms, v := randomChain(rng, 3, 4)
	amin, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err := amin.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	amax, err := NewSemiring(semiring.MaxPlus{}, ms, v)
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := amax.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lo {
		if hi[i] < lo[i]-1e-9 {
			t.Errorf("entry %d: longest %v < shortest %v", i, hi[i], lo[i])
		}
	}
	// On random data with many paths, strict separation is expected.
	if math.Abs(hi[0]-lo[0]) < 1e-9 {
		t.Error("longest and shortest coincide on random data")
	}
}
