package pipearray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
)

func randomProblems(rng *rand.Rand, b, k, m int) []StreamProblem {
	out := make([]StreamProblem, b)
	for i := range out {
		ms, v := randomChain(rng, k, m)
		out[i] = StreamProblem{Ms: ms, V: v}
	}
	return out
}

func TestStreamMatchesIndividualRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ b, k, m int }{
		{1, 2, 3}, {3, 2, 3}, {2, 3, 4}, {4, 1, 2}, {3, 5, 3}, {2, 4, 1},
	} {
		probs := randomProblems(rng, tc.b, tc.k, tc.m)
		st, err := NewStream(probs)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		got, err := st.Run(false)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for bi, pr := range probs {
			want, err := Solve(pr.Ms, pr.V)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got[bi], want) {
				t.Errorf("%+v problem %d: stream %v, individual %v", tc, bi, got[bi], want)
			}
		}
	}
}

func TestStreamGoroutinesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := randomProblems(rng, 3, 3, 3)
	st, err := NewStream(probs)
	if err != nil {
		t.Fatal(err)
	}
	lock, err := st.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	goro, err := st.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range lock {
		if !almostEqual(lock[bi], goro[bi]) {
			t.Errorf("problem %d: %v vs %v", bi, lock[bi], goro[bi])
		}
	}
}

func TestStreamThroughput(t *testing.T) {
	// The whole batch costs one pipeline fill, not one per problem:
	// B*K'*m + m - 1 versus B*(K'*m + m - 1).
	rng := rand.New(rand.NewSource(3))
	b, k, m := 5, 4, 6
	probs := randomProblems(rng, b, k, m)
	st, err := NewStream(probs)
	if err != nil {
		t.Fatal(err)
	}
	if st.KPadded != k { // k even: no padding
		t.Fatalf("KPadded = %d, want %d", st.KPadded, k)
	}
	if got, want := st.WallCycles(), b*k*m+m-1; got != want {
		t.Errorf("WallCycles = %d, want %d", got, want)
	}
	separate := b * (k*m + m - 1)
	if st.WallCycles() >= separate {
		t.Errorf("streaming (%d) should beat separate runs (%d)", st.WallCycles(), separate)
	}
}

func TestStreamOddKPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := randomProblems(rng, 2, 3, 3) // K = 3: odd, padded to 4
	st, err := NewStream(probs)
	if err != nil {
		t.Fatal(err)
	}
	if st.KPadded != 4 {
		t.Errorf("KPadded = %d, want 4", st.KPadded)
	}
	got, err := st.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	for bi, pr := range probs {
		want, err := Solve(pr.Ms, pr.V)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got[bi], want) {
			t.Errorf("problem %d: %v, want %v", bi, got[bi], want)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := NewStream(nil); err == nil {
		t.Error("empty batch accepted")
	}
	rng := rand.New(rand.NewSource(5))
	a := randomProblems(rng, 1, 2, 3)[0]
	b := randomProblems(rng, 1, 2, 4)[0] // different m
	if _, err := NewStream([]StreamProblem{a, b}); err == nil {
		t.Error("mismatched shapes accepted")
	}
	c := randomProblems(rng, 1, 3, 3)[0] // different K
	if _, err := NewStream([]StreamProblem{a, c}); err == nil {
		t.Error("mismatched phase counts accepted")
	}
	if _, err := NewStream([]StreamProblem{{}}); err == nil {
		t.Error("empty problem accepted")
	}
}

func TestStreamDegenerateFirstMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func() StreamProblem {
		ms, v := randomChain(rng, 2, 3)
		ms[0] = ms[0].Clone()
		// Make the first matrix 1x3 (single-source shape).
		row := ms[0]
		one := row.Row(0)
		ms[0] = rowMatrix(one)
		return StreamProblem{Ms: ms, V: v}
	}
	probs := []StreamProblem{mk(), mk(), mk()}
	st, err := NewStream(probs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	for bi, pr := range probs {
		want, err := Solve(pr.Ms, pr.V)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[bi]) != 1 || !almostEqual(got[bi], want) {
			t.Errorf("problem %d: %v, want %v", bi, got[bi], want)
		}
	}
}

func TestPropertyStreamEqualsIndividual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		probs := randomProblems(rng, b, k, m)
		st, err := NewStream(probs)
		if err != nil {
			return false
		}
		got, err := st.Run(false)
		if err != nil {
			return false
		}
		for bi, pr := range probs {
			want, err := Solve(pr.Ms, pr.V)
			if err != nil || !almostEqual(got[bi], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// rowMatrix builds a 1xN matrix from a row.
func rowMatrix(row []float64) *matrix.Matrix {
	m := matrix.New(1, len(row), 0)
	for j, v := range row {
		m.Set(0, j, v)
	}
	return m
}
