package matrix

// Monomorphized chain-product kernels. ChainVec is the single-processor
// baseline the engines are judged against AND the library fast path for
// backward multistage evaluation; its interface-typed semiring costs two
// indirect calls per cell and its right-to-left product allocates one
// vector per stage. The generic mirrors instantiate at a concrete
// zero-size semiring (the per-cell Add/Mul inline) and ping-pong two
// pooled buffers, so a steady-state evaluation allocates only its result
// slice — or nothing, with ChainVecInto.
//
// The reduction order is exactly MulVec's row-major Add-fold, so outputs
// are bitwise identical to ChainVec for every semiring.

import (
	"fmt"
	"sync"

	"systolicdp/internal/arena"
	"systolicdp/internal/semiring"
)

// MulVecG computes out = a (.) v with the semiring monomorphized,
// writing into out (which must have length a.Rows). Bitwise identical to
// MulVec.
func MulVecG[S semiring.Semiring](s S, a *Matrix, v, out []float64) {
	if a.Cols != len(v) {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %dx%d . %d", a.Rows, a.Cols, len(v)))
	}
	if len(out) != a.Rows {
		panic(fmt.Sprintf("matrix: MulVecG out length %d, want %d", len(out), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : i*a.Cols+a.Cols]
		acc := s.Zero()
		for k, x := range row {
			acc = s.Add(acc, s.Mul(x, v[k]))
		}
		out[i] = acc
	}
}

type chainWS struct{ a, b []float64 }

var chainPool = sync.Pool{New: func() any { return new(chainWS) }}

// ChainVecG evaluates equation (8c) right-to-left like ChainVec, with
// the semiring monomorphized and pooled intermediate vectors. Bitwise
// identical to ChainVec(s, ms, v); only the returned slice allocates.
func ChainVecG[S semiring.Semiring](s S, ms []*Matrix, v []float64) []float64 {
	n := len(v)
	if len(ms) > 0 {
		n = ms[0].Rows
	}
	out := make([]float64, n)
	ChainVecInto(s, out, ms, v)
	return out
}

// ChainVecInto is ChainVecG writing into a caller-owned result slice
// (length ms[0].Rows, or len(v) for an empty chain) for allocation-free
// steady-state evaluation.
func ChainVecInto[S semiring.Semiring](s S, dst []float64, ms []*Matrix, v []float64) {
	want := len(v)
	if len(ms) > 0 {
		want = ms[0].Rows
	}
	if len(dst) != want {
		panic(fmt.Sprintf("matrix: ChainVecInto dst length %d, want %d", len(dst), want))
	}
	if len(ms) == 0 {
		copy(dst, v)
		return
	}
	ws := chainPool.Get().(*chainWS)
	cur := arena.Floats(ws.a, len(v))
	copy(cur, v)
	next := ws.b
	for i := len(ms) - 1; i >= 0; i-- {
		if i == 0 {
			MulVecG(s, ms[0], cur, dst)
			break
		}
		next = arena.Floats(next, ms[i].Rows)
		MulVecG(s, ms[i], cur, next)
		cur, next = next, cur
	}
	ws.a, ws.b = cur, next // keep the grown capacity pooled
	chainPool.Put(ws)      // clean completion only (arena discipline)
}
