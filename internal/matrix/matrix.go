// Package matrix provides dense matrices over a closed semiring and the
// sequential matrix-string products that serve as the single-processor
// baselines for the paper's systolic arrays (Section 3.1, equations (7)-(8)).
package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"systolicdp/internal/semiring"
)

// Matrix is a dense rows x cols matrix stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a rows x cols matrix filled with fill.
func New(rows, cols int, fill float64) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
	if fill != 0 {
		for i := range m.Data {
			m.Data[i] = fill
		}
	}
	return m
}

// Zeros returns a rows x cols matrix of the semiring's Zero (the additive
// identity: +inf for (MIN,+)).
func Zeros(s semiring.Semiring, rows, cols int) *Matrix {
	return New(rows, cols, s.Zero())
}

// Identity returns the n x n semiring identity matrix: One on the diagonal,
// Zero elsewhere.
func Identity(s semiring.Semiring, n int) *Matrix {
	m := Zeros(s, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, s.One())
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols, 0)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged row %d: %d vs %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Random returns a rows x cols matrix with entries drawn uniformly from
// [lo, hi) using rng. It is the workload generator for the array benches.
func Random(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols, 0)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m. Design 1 of
// the paper feeds matrix B transposed into the array (Section 3.2).
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows, 0)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Equal reports elementwise equality within tol, treating equal infinities
// as equal.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		w := o.Data[i]
		if math.IsInf(v, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.IsInf(v, -1) && math.IsInf(w, -1) {
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.3g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MulMat computes the semiring product a (.) b. For (MIN,+) this is
// min-plus matrix multiplication: (a.b)[i][j] = min_k (a[i][k] + b[k][j]).
// The tropical semirings dispatch to a specialised kernel that avoids the
// per-element interface calls (see BenchmarkKernelAblation); other
// semirings use MulMatGeneric.
func MulMat(s semiring.Semiring, a, b *Matrix) *Matrix {
	switch s.(type) {
	case semiring.MinPlus:
		return mulMatTropical(a, b, false)
	case semiring.MaxPlus:
		return mulMatTropical(a, b, true)
	}
	return MulMatGeneric(s, a, b)
}

// MulMatGeneric is the semiring-generic product kernel; MulMat uses it
// for any semiring without a specialised fast path.
func MulMatGeneric(s semiring.Semiring, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulMat dimension mismatch %dx%d . %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols, 0)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			acc := s.Zero()
			for k := 0; k < a.Cols; k++ {
				acc = s.Add(acc, s.Mul(a.At(i, k), b.At(k, j)))
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// mulMatTropical is the flat-loop (MIN,+)/(MAX,+) kernel.
func mulMatTropical(a, b *Matrix, max bool) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulMat dimension mismatch %dx%d . %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols, 0)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for j := range orow {
			if max {
				orow[j] = math.Inf(-1)
			} else {
				orow[j] = math.Inf(1)
			}
		}
		for k, av := range arow {
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			if max {
				for j, bv := range brow {
					if v := av + bv; v > orow[j] {
						orow[j] = v
					}
				}
			} else {
				for j, bv := range brow {
					if v := av + bv; v < orow[j] {
						orow[j] = v
					}
				}
			}
		}
	}
	return out
}

// MulVec computes the semiring matrix-vector product a (.) v, the
// inner-product form of the paper's equation (8a): f(C) = C . D.
func MulVec(s semiring.Semiring, a *Matrix, v []float64) []float64 {
	if a.Cols != len(v) {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %dx%d . %d", a.Rows, a.Cols, len(v)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		acc := s.Zero()
		for k := 0; k < a.Cols; k++ {
			acc = s.Add(acc, s.Mul(a.At(i, k), v[k]))
		}
		out[i] = acc
	}
	return out
}

// ArgMulVec is MulVec with argument tracking under a Comparative semiring:
// args[i] is the k attaining out[i] (ties to the smallest k), or -1 for an
// empty reduction. It backs path reconstruction in the baselines.
func ArgMulVec(s semiring.Comparative, a *Matrix, v []float64) (out []float64, args []int) {
	if a.Cols != len(v) {
		panic(fmt.Sprintf("matrix: ArgMulVec dimension mismatch %dx%d . %d", a.Rows, a.Cols, len(v)))
	}
	out = make([]float64, a.Rows)
	args = make([]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i], args[i] = semiring.ArgDot(s, a.Row(i), v)
	}
	return out, args
}

// ChainVec evaluates the paper's equation (8c) right-to-left:
//
//	f = M[0] . (M[1] . ( ... (M[n-1] . v) ... ))
//
// which is how a backward monadic-serial DP problem evaluates a multistage
// graph. It is the single-processor baseline whose iteration count forms
// the numerator of the processor-utilization formula, equation (9).
func ChainVec(s semiring.Semiring, ms []*Matrix, v []float64) []float64 {
	out := append([]float64(nil), v...)
	for i := len(ms) - 1; i >= 0; i-- {
		out = MulVec(s, ms[i], out)
	}
	return out
}

// ChainVecOps evaluates ChainVec and returns the number of scalar
// shift-multiply-accumulate iterations a single processor performs, i.e.
// sum over matrices of rows*cols. This is the paper's serial iteration
// count (N-2)m^2 + m for a single-source single-sink (N+1)-stage graph.
func ChainVecOps(s semiring.Semiring, ms []*Matrix, v []float64) (out []float64, ops int) {
	out = append([]float64(nil), v...)
	for i := len(ms) - 1; i >= 0; i-- {
		ops += ms[i].Rows * ms[i].Cols
		out = MulVec(s, ms[i], out)
	}
	return out, ops
}

// ChainMat multiplies a string of matrices left-to-right in the fixed
// serial order ((M0.M1).M2)... . It is the baseline for the
// divide-and-conquer evaluation of Section 4.
func ChainMat(s semiring.Semiring, ms []*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("matrix: ChainMat of empty string")
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		out = MulMat(s, out, m)
	}
	return out
}

// ChainMatTree multiplies a string of matrices by the balanced
// divide-and-conquer recursion of Section 4 (equation (15)): the string is
// split in half, the halves are multiplied recursively, and the two partial
// products are combined. Over an associative semiring the result equals
// ChainMat; the tree shape is what the dnc package schedules in parallel.
func ChainMatTree(s semiring.Semiring, ms []*Matrix) *Matrix {
	switch len(ms) {
	case 0:
		panic("matrix: ChainMatTree of empty string")
	case 1:
		return ms[0].Clone()
	}
	mid := len(ms) / 2
	left := ChainMatTree(s, ms[:mid])
	right := ChainMatTree(s, ms[mid:])
	return MulMat(s, left, right)
}
