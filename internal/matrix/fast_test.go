package matrix

import (
	"math/rand"
	"testing"

	"systolicdp/internal/semiring"
)

func randChain(rng *rand.Rand, sizes []int) ([]*Matrix, []float64) {
	ms := make([]*Matrix, len(sizes)-1)
	for i := range ms {
		ms[i] = Random(rng, sizes[i], sizes[i+1], -5, 5)
	}
	v := make([]float64, sizes[len(sizes)-1])
	for i := range v {
		v[i] = rng.Float64()*10 - 5
	}
	return ms, v
}

// TestChainVecGBitwiseVsChainVec pins the monomorphized chain product
// against the interface-typed baseline for every semiring, including
// ragged stage sizes and the empty chain.
func TestChainVecGBitwiseVsChainVec(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := [][]int{{1, 1}, {3, 5}, {4, 4, 4}, {2, 7, 3, 5, 1}, {6}}
	for _, sizes := range shapes {
		ms, v := randChain(rng, sizes)
		for _, s := range semiring.All() {
			want := ChainVec(s, ms, v)
			var got []float64
			switch sr := s.(type) {
			case semiring.MinPlus:
				got = ChainVecG(sr, ms, v)
			case semiring.MaxPlus:
				got = ChainVecG(sr, ms, v)
			case semiring.PlusTimes:
				got = ChainVecG(sr, ms, v)
			case semiring.BoolOrAnd:
				got = ChainVecG(sr, ms, v)
			}
			if len(got) != len(want) {
				t.Fatalf("%v %s: length %d != %d", sizes, s.Name(), len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v %s: out[%d] = %v != %v", sizes, s.Name(), i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulVecGPanicsOnMismatch(t *testing.T) {
	a := New(2, 3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	MulVecG(semiring.MinPlus{}, a, []float64{1, 2}, make([]float64, 2))
}

// TestChainVecIntoZeroAllocSteadyState is the tentpole's allocation gate
// for the graph chain-product kernel.
func TestChainVecIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(42))
	ms, v := randChain(rng, []int{4, 6, 5, 3})
	dst := make([]float64, ms[0].Rows)
	ChainVecInto(semiring.MinPlus{}, dst, ms, v) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		ChainVecInto(semiring.MinPlus{}, dst, ms, v)
	})
	if allocs != 0 {
		t.Fatalf("ChainVecInto allocates %v objects/op steady-state, want 0", allocs)
	}
}

func BenchmarkChainVec32(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	ms, v := randChain(rng, []int{32, 32, 32, 32, 32, 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChainVec(semiring.MinPlus{}, ms, v)
	}
}

func BenchmarkChainVecInto32(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	ms, v := randChain(rng, []int{32, 32, 32, 32, 32, 32})
	dst := make([]float64, ms[0].Rows)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChainVecInto(semiring.MinPlus{}, dst, ms, v)
	}
}
