package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/semiring"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3, 7)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 7 {
				t.Errorf("At(%d,%d) = %v, want 7", i, j, m.At(i, j))
			}
		}
	}
	m.Set(1, 2, -1)
	if m.At(1, 2) != -1 {
		t.Error("Set/At roundtrip failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2, 0)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestNegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative dims")
		}
	}()
	New(-1, 2, 0)
}

func TestFromRowsAndRowCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.Row(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); got[0] != 3 || got[1] != 6 {
		t.Errorf("Col(2) = %v", got)
	}
	// Mutating returned slices must not alias the matrix.
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) == 99 {
		t.Error("Row must return a copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Error("Clone must not share storage")
	}
}

func TestEqual(t *testing.T) {
	s := semiring.MinPlus{}
	a := Zeros(s, 2, 2)
	b := Zeros(s, 2, 2)
	if !a.Equal(b, 0) {
		t.Error("matrices of +inf must compare equal")
	}
	b.Set(0, 0, 1)
	if a.Equal(b, 0) {
		t.Error("different matrices compared equal")
	}
	if a.Equal(New(2, 3, 0), 0) {
		t.Error("different shapes compared equal")
	}
}

func TestIdentityMinPlus(t *testing.T) {
	s := semiring.MinPlus{}
	id := Identity(s, 3)
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if got := MulMat(s, id, m); !got.Equal(m, 0) {
		t.Errorf("I.M != M:\n%v", got)
	}
	if got := MulMat(s, m, id); !got.Equal(m, 0) {
		t.Errorf("M.I != M:\n%v", got)
	}
}

func TestMulVecEquation8a(t *testing.T) {
	// The 3x3 example of equation (8a): f(C) = C . D over (MIN,+).
	s := semiring.MinPlus{}
	c := FromRows([][]float64{
		{5, 2, 7},
		{1, 9, 3},
		{4, 4, 4},
	})
	d := []float64{1, 4, 0}
	got := MulVec(s, c, d)
	want := []float64{
		math.Min(5+1, math.Min(2+4, 7+0)), // 6
		math.Min(1+1, math.Min(9+4, 3+0)), // 2
		math.Min(4+1, math.Min(4+4, 4+0)), // 4
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("f(C%d) = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestMulMatPlusTimesMatchesClassic(t *testing.T) {
	s := semiring.PlusTimes{}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MulMat(s, a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Errorf("got\n%v want\n%v", got, want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	s := semiring.MinPlus{}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MulMat(s, New(2, 3, 0), New(2, 3, 0))
}

func TestChainVecMatchesChainMat(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1))
	ms := []*Matrix{
		Random(rng, 4, 4, 0, 10),
		Random(rng, 4, 4, 0, 10),
		Random(rng, 4, 4, 0, 10),
	}
	v := []float64{1, 2, 3, 4}
	vm := New(4, 1, 0)
	for i, x := range v {
		vm.Set(i, 0, x)
	}
	got := ChainVec(s, ms, v)
	want := MulMat(s, ChainMat(s, ms), vm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-9 {
			t.Errorf("ChainVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestChainVecOpsSerialIterationCount(t *testing.T) {
	// For an (N+1)-stage single-source single-sink graph the paper counts
	// (N-2)m^2 + m serial iterations: a 1xm first matrix, N-2 full mxm
	// matrices, and a final mx1 column vector absorbed as input vector v.
	s := semiring.MinPlus{}
	m := 5
	bigN := 7 // number of matrices (stages N+1 = bigN+1 with the vector)
	rng := rand.New(rand.NewSource(2))
	ms := make([]*Matrix, 0, bigN)
	ms = append(ms, Random(rng, 1, m, 0, 10)) // row vector A
	for i := 0; i < bigN-1; i++ {
		ms = append(ms, Random(rng, m, m, 0, 10))
	}
	v := make([]float64, m)
	_, ops := ChainVecOps(s, ms, v)
	want := (bigN-1)*m*m + m
	if ops != want {
		t.Errorf("ops = %d, want %d", ops, want)
	}
}

func TestChainMatTreeEqualsChainMat(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		ms := make([]*Matrix, n)
		for i := range ms {
			ms[i] = Random(rng, 3, 3, 0, 100)
		}
		serial := ChainMat(s, ms)
		tree := ChainMatTree(s, ms)
		if !serial.Equal(tree, 1e-9) {
			t.Errorf("n=%d: tree product differs from serial product", n)
		}
	}
}

func TestChainEmptyPanics(t *testing.T) {
	s := semiring.MinPlus{}
	for _, f := range []func(){
		func() { ChainMat(s, nil) },
		func() { ChainMatTree(s, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty chain")
				}
			}()
			f()
		}()
	}
}

func TestPropertyMinPlusAssociativity(t *testing.T) {
	// (A.B).C == A.(B.C) over (MIN,+) — the algebraic fact that licenses
	// the paper's divide-and-conquer reordering (equation (15)).
	s := semiring.MinPlus{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 3, 4, 0, 50)
		b := Random(rng, 4, 2, 0, 50)
		c := Random(rng, 2, 5, 0, 50)
		l := MulMat(s, MulMat(s, a, b), c)
		r := MulMat(s, a, MulMat(s, b, c))
		return l.Equal(r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArgMulVecTracksMinimizer(t *testing.T) {
	s := semiring.MinPlus{}
	a := FromRows([][]float64{
		{5, 2, 7},
		{1, 9, 3},
	})
	v := []float64{1, 3, 0} // row 0 products: 6, 5, 7
	out, args := ArgMulVec(s, a, v)
	if out[0] != 5 || args[0] != 1 {
		t.Errorf("row 0: got (%v,%d), want (5,1)", out[0], args[0])
	}
	if out[1] != 2 || args[1] != 0 {
		t.Errorf("row 1: got (%v,%d), want (2,0)", out[1], args[1])
	}
}

func TestRandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Random(rng, 10, 10, 2, 3)
	for _, v := range m.Data {
		if v < 2 || v >= 3 {
			t.Fatalf("Random value %v outside [2,3)", v)
		}
	}
}

func TestStringRenders(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if m.String() == "" {
		t.Error("String() empty")
	}
}

func TestTropicalFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Random(rng, r, k, 0, 50)
		b := Random(rng, k, c, 0, 50)
		// Sprinkle semiring zeros (missing edges).
		if k > 1 {
			a.Set(0, k-1, math.Inf(1))
		}
		for _, s := range []semiring.Semiring{semiring.MinPlus{}, semiring.MaxPlus{}} {
			if s.Name() == "max-plus" {
				// For max-plus the absent edge is -inf.
				if k > 1 {
					a.Set(0, k-1, math.Inf(-1))
				}
			}
			fast := MulMat(s, a, b)
			slow := MulMatGeneric(s, a, b)
			if !fast.Equal(slow, 1e-9) {
				t.Fatalf("trial %d %s: fast path differs from generic", trial, s.Name())
			}
		}
	}
}

func TestTropicalFastPathDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MulMat(semiring.MinPlus{}, New(2, 3, 0), New(2, 2, 0))
}
