//go:build !race

package matrix

const raceEnabled = false
