//go:build race

package matrix

// raceEnabled gates the steady-state allocation tests: under the race
// detector sync.Pool randomly drops one in four Puts (sync/pool.go), so
// a warm arena still reallocates and a 0 allocs/op assertion flakes.
const raceEnabled = true
