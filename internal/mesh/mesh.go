// Package mesh implements the two-dimensional systolic matrix-multiplier
// that Section 4 of the paper treats as the unit of work of its
// divide-and-conquer analysis ("the time to multiply two matrices by a
// systolic array is constant T1"). The design is the classic
// stationary-result mesh (Kung-style, cf. the paper's reference [19],
// Li & Wah, "Design of Optimal Systolic Arrays"):
//
//   - an n x n grid of PEs computes C = A (.) B over a semiring;
//   - row i of A streams in from the left edge, skewed by i cycles;
//   - column j of B streams in from the top edge, skewed by j cycles;
//   - element a[i][k] and element b[k][j] meet in PE (i,j) at cycle
//     i + j + k, where the PE folds Mul(a,b) into its stationary
//     accumulator;
//   - the product is complete after 3n-2 cycles.
//
// Like the linear arrays, the mesh runs on the shared engine under both
// the lock-step and the goroutine-per-PE runners.
package mesh

import (
	"fmt"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

// Array is a configured n x n mesh for one product.
type Array struct {
	N   int
	net *systolic.Array
	pes []*pe
	s   semiring.Semiring
}

// pe is one mesh cell: ports 0/1 are the west/north inputs, outputs 0/1
// the east/south forwards; acc is the stationary C element.
type pe struct {
	s   semiring.Semiring
	acc float64
}

func (p *pe) NumIn() int  { return 2 }
func (p *pe) NumOut() int { return 2 }
func (p *pe) Reset()      { p.acc = p.s.Zero() }

func (p *pe) Step(in []systolic.Token) ([]systolic.Token, bool) {
	a, b := in[0], in[1]
	busy := false
	if a.Valid && b.Valid {
		p.acc = p.s.Add(p.acc, p.s.Mul(a.V, b.V))
		busy = true
	}
	return []systolic.Token{a, b}, busy
}

// New builds a mesh computing a (.) b over s. Both matrices must be
// square with equal sizes (the shape Section 4 assumes); rectangular
// chains pad externally.
func New(s semiring.Semiring, a, b *matrix.Matrix) (*Array, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Cols != b.Rows {
		return nil, fmt.Errorf("mesh: need equal square matrices, have %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, fmt.Errorf("mesh: empty matrices")
	}
	arr := &Array{N: n, s: s}
	net := &systolic.Array{}
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n*n; i++ {
		p := &pe{s: s, acc: s.Zero()}
		arr.pes = append(arr.pes, p)
		net.PEs = append(net.PEs, p)
	}
	ac := a.Clone()
	bc := b.Clone()
	// West edge sources: row i of A, element k at cycle i+k.
	for i := 0; i < n; i++ {
		i := i
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: systolic.External, Port: 0},
			To:   systolic.Endpoint{PE: idx(i, 0), Port: 0},
			Source: func(t int) systolic.Token {
				k := t - i
				if k < 0 || k >= n {
					return systolic.Bubble()
				}
				return systolic.Token{V: ac.At(i, k), Valid: true}
			},
		})
	}
	// North edge sources: column j of B, element k at cycle j+k.
	for j := 0; j < n; j++ {
		j := j
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: systolic.External, Port: 0},
			To:   systolic.Endpoint{PE: idx(0, j), Port: 1},
			Source: func(t int) systolic.Token {
				k := t - j
				if k < 0 || k >= n {
					return systolic.Bubble()
				}
				return systolic.Token{V: bc.At(k, j), Valid: true}
			},
		})
	}
	// Horizontal (east) and vertical (south) forwards, with edge sinks.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j+1 < n {
				net.Wires = append(net.Wires, systolic.Wire{
					From: systolic.Endpoint{PE: idx(i, j), Port: 0},
					To:   systolic.Endpoint{PE: idx(i, j+1), Port: 0},
					Init: systolic.Bubble(),
				})
			} else {
				net.Wires = append(net.Wires, systolic.Wire{
					From: systolic.Endpoint{PE: idx(i, j), Port: 0},
					To:   systolic.Endpoint{PE: systolic.External, Port: 0},
				})
			}
			if i+1 < n {
				net.Wires = append(net.Wires, systolic.Wire{
					From: systolic.Endpoint{PE: idx(i, j), Port: 1},
					To:   systolic.Endpoint{PE: idx(i+1, j), Port: 1},
					Init: systolic.Bubble(),
				})
			} else {
				net.Wires = append(net.Wires, systolic.Wire{
					From: systolic.Endpoint{PE: idx(i, j), Port: 1},
					To:   systolic.Endpoint{PE: systolic.External, Port: 0},
				})
			}
		}
	}
	arr.net = net
	return arr, nil
}

// WallCycles returns the completion time 3n-2.
func (a *Array) WallCycles() int { return 3*a.N - 2 }

// Run executes the mesh and returns the product. If goroutines is true
// the goroutine-per-PE runner is used.
func (a *Array) Run(goroutines bool) (*matrix.Matrix, *systolic.Result, error) {
	a.net.Reset()
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = a.net.RunGoroutines(a.WallCycles())
	} else {
		res, err = a.net.RunLockstep(a.WallCycles(), nil)
	}
	if err != nil {
		return nil, nil, err
	}
	out := matrix.New(a.N, a.N, 0)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			out.Set(i, j, a.pes[i*a.N+j].acc)
		}
	}
	return out, res, nil
}

// Mul is a convenience wrapper: build and run lock-step.
func Mul(s semiring.Semiring, a, b *matrix.Matrix) (*matrix.Matrix, error) {
	arr, err := New(s, a, b)
	if err != nil {
		return nil, err
	}
	out, _, err := arr.Run(false)
	return out, err
}
