package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

func TestMulMinPlusMatchesBaseline(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := matrix.Random(rng, n, n, 0, 10)
		b := matrix.Random(rng, n, n, 0, 10)
		got, err := Mul(s, a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := matrix.MulMat(s, a, b); !got.Equal(want, 1e-9) {
			t.Errorf("n=%d: mesh product differs from baseline", n)
		}
	}
}

func TestMulPlusTimesMatchesClassic(t *testing.T) {
	s := semiring.PlusTimes{}
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-9) {
		t.Errorf("got\n%v want\n%v", got, want)
	}
}

func TestGoroutinesMatchLockstep(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(rng, 4, 4, 0, 10)
	b := matrix.Random(rng, 4, 4, 0, 10)
	arr, err := New(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	lock, lres, err := arr.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	goro, gres, err := arr.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if !lock.Equal(goro, 0) {
		t.Error("runners disagree")
	}
	for i := range lres.Busy {
		if lres.Busy[i] != gres.Busy[i] {
			t.Errorf("busy[%d]: %d vs %d", i, lres.Busy[i], gres.Busy[i])
		}
	}
}

func TestWallCyclesAndBusy(t *testing.T) {
	// Completion in 3n-2 cycles; each PE does exactly n useful steps.
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(3))
	n := 5
	a := matrix.Random(rng, n, n, 0, 10)
	b := matrix.Random(rng, n, n, 0, 10)
	arr, err := New(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if arr.WallCycles() != 3*n-2 {
		t.Errorf("WallCycles = %d, want %d", arr.WallCycles(), 3*n-2)
	}
	_, res, err := arr.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	for i, bz := range res.Busy {
		if bz != n {
			t.Errorf("PE %d busy %d cycles, want %d", i, bz, n)
		}
	}
}

func TestErrors(t *testing.T) {
	s := semiring.MinPlus{}
	if _, err := New(s, matrix.New(2, 3, 0), matrix.New(3, 3, 0)); err == nil {
		t.Error("non-square A accepted")
	}
	if _, err := New(s, matrix.New(2, 2, 0), matrix.New(3, 3, 0)); err == nil {
		t.Error("mismatched sizes accepted")
	}
	if _, err := New(s, matrix.New(0, 0, 0), matrix.New(0, 0, 0)); err == nil {
		t.Error("empty matrices accepted")
	}
}

func TestRerunDeterministic(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(4))
	a := matrix.Random(rng, 3, 3, 0, 10)
	b := matrix.Random(rng, 3, 3, 0, 10)
	arr, err := New(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := arr.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := arr.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2, 0) {
		t.Error("rerun differs")
	}
}

func TestInputsNotMutated(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(5))
	a := matrix.Random(rng, 3, 3, 0, 10)
	b := matrix.Random(rng, 3, 3, 0, 10)
	ac, bc := a.Clone(), b.Clone()
	if _, err := Mul(s, a, b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(ac, 0) || !b.Equal(bc, 0) {
		t.Error("inputs mutated")
	}
}

func TestPropertyMeshEqualsBaseline(t *testing.T) {
	s := semiring.MinPlus{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := matrix.Random(rng, n, n, 0, 50)
		b := matrix.Random(rng, n, n, 0, 50)
		got, err := Mul(s, a, b)
		if err != nil {
			return false
		}
		return got.Equal(matrix.MulMat(s, a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
