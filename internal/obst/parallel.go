package obst

import (
	"math"
)

// The OBST AND/OR-graph has the Figure-2 shape, so the Section 6.2
// parallel designs apply verbatim: a broadcast-bus machine with one
// processor per subproblem, and the serialised systolic variant whose
// results ripple one level per step. These simulators mirror
// matchain.SimulateBus/SimulateSystolic for the OBST recurrence
// c(i,j) = w(i,j) + min_k { c(i,k-1) + c(k,j) }, computing the cost table
// while tracking completion times under the paper's two-candidates-per-
// step OR-node semantics.

// TimingResult reports a simulated parallel OBST run.
type TimingResult struct {
	Cost       float64
	Completion float64
	Processors int
}

func (p *Problem) simulate(base float64, transfer func(a, s int) float64) (*TimingResult, error) {
	t, err := p.tables()
	if err != nil {
		return nil, err
	}
	n := t.N
	done := make([][]float64, n+1)
	cost := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		done[i] = make([]float64, n+1)
		cost[i] = make([]float64, n+1)
		done[i][i] = base
		cost[i][i] = t.Cost[i][i] // empty-subtree base value
	}
	res := &TimingResult{Processors: n * (n + 1) / 2}
	for s := 1; s <= n; s++ {
		for i := 0; i+s <= n; i++ {
			j := i + s
			readies := make([]float64, 0, s)
			best := math.Inf(1)
			for k := i + 1; k <= j; k++ {
				a, b := k-1-i, j-k // child span sizes (in keys)
				r := math.Max(done[i][k-1]+transfer(a, s), done[k][j]+transfer(b, s))
				readies = append(readies, r)
				if c := cost[i][k-1] + cost[k][j]; c < best {
					best = c
				}
			}
			cost[i][j] = best + t.W[i][j]
			done[i][j] = obstFinish(readies, 2)
		}
	}
	res.Cost = cost[0][n]
	res.Completion = done[0][n]
	return res, nil
}

// obstFinish mirrors matchain's two-candidates-per-step OR-node timing.
func obstFinish(readies []float64, rate int) float64 {
	sorted := append([]float64(nil), readies...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	t := 0.0
	done := 0
	for done < len(sorted) {
		if sorted[done] > t {
			t = sorted[done]
		}
		avail := 0
		for done+avail < len(sorted) && sorted[done+avail] <= t {
			avail++
		}
		take := avail
		if take > rate {
			take = rate
		}
		done += take
		t++
	}
	return t
}

// SimulateBus runs the broadcast-bus design: results visible the moment
// they complete. Completion is linear in the key count — the
// Proposition-2 shape for this problem.
func (p *Problem) SimulateBus() (*TimingResult, error) {
	return p.simulate(1, func(a, s int) float64 { return 0 })
}

// SimulateSystolic runs the serialised design: a size-a child's result
// ripples through s-a dummy levels (Figure 8). Completion doubles, the
// Proposition-3 shape.
func (p *Problem) SimulateSystolic() (*TimingResult, error) {
	return p.simulate(2, func(a, s int) float64 { return float64(s - a) })
}
