package obst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/semiring"
)

func randomProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{P: make([]float64, n), Q: make([]float64, n+1)}
	for i := range p.P {
		p.P[i] = rng.Float64()
	}
	for i := range p.Q {
		p.Q[i] = rng.Float64() * 0.5
	}
	return p
}

func TestKnuthTextbookExample(t *testing.T) {
	// CLRS exercise instance: p = (.15,.10,.05,.10,.20), q = (.05,.10,.05,.05,.05,.10);
	// the optimal expected cost is 2.75.
	p := &Problem{
		P: []float64{0.15, 0.10, 0.05, 0.10, 0.20},
		Q: []float64{0.05, 0.10, 0.05, 0.05, 0.05, 0.10},
	}
	tab, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tab.OptimalCost()-2.75) > 1e-9 {
		t.Errorf("optimal cost %v, want 2.75", tab.OptimalCost())
	}
	// Root of the whole tree is key 2 (1-indexed in CLRS: k2).
	if tab.Root[0][5] != 2 {
		t.Errorf("root = %d, want 2", tab.Root[0][5])
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng, 1+rng.Intn(8))
		tab, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		bf, err := p.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tab.OptimalCost()-bf) > 1e-9 {
			t.Fatalf("trial %d: DP %v != brute %v", trial, tab.OptimalCost(), bf)
		}
	}
}

func TestKnuthMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng, 1+rng.Intn(20))
		full, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		fast, err := p.SolveKnuth()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full.OptimalCost()-fast.OptimalCost()) > 1e-9 {
			t.Fatalf("trial %d: Knuth %v != DP %v", trial, fast.OptimalCost(), full.OptimalCost())
		}
	}
}

func TestKnuthDoesLessWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 64)
	full, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := p.SolveKnuth()
	if err != nil {
		t.Fatal(err)
	}
	if fast.Inner >= full.Inner {
		t.Errorf("Knuth inner iterations %d not below DP's %d", fast.Inner, full.Inner)
	}
	// O(n^2) vs O(n^3): at n=64 the gap should be at least ~5x.
	if full.Inner < 5*fast.Inner {
		t.Errorf("speedup only %d/%d", full.Inner, fast.Inner)
	}
}

func TestTreeSearchCostEqualsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 1+rng.Intn(12))
		tab, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		root, left, right := tab.Tree()
		if got := p.SearchCost(root, left, right); math.Abs(got-tab.OptimalCost()) > 1e-9 {
			t.Fatalf("trial %d: tree cost %v != DP %v", trial, got, tab.OptimalCost())
		}
	}
}

func TestTreeIsValidBST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 10)
	tab, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	root, left, right := tab.Tree()
	// In-order traversal must visit keys 0..n-1 in order.
	var order []int
	var walk func(k int)
	walk = func(k int) {
		if k < 0 {
			return
		}
		walk(left[k])
		order = append(order, k)
		walk(right[k])
	}
	walk(root)
	if len(order) != 10 {
		t.Fatalf("traversal visited %d keys", len(order))
	}
	for i, k := range order {
		if k != i {
			t.Fatalf("in-order traversal %v not sorted", order)
		}
	}
}

func TestANDORMatchesDP(t *testing.T) {
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(rng, 1+rng.Intn(8))
		g, err := p.BuildANDOR()
		if err != nil {
			t.Fatal(err)
		}
		vals, err := g.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vals[g.Roots[0]]-tab.OptimalCost()) > 1e-9 {
			t.Fatalf("trial %d: AND/OR %v != DP %v", trial, vals[g.Roots[0]], tab.OptimalCost())
		}
		// Same nonserial shape as the matrix-chain graph.
		if trial == 0 && len(p.P) >= 3 && g.IsSerial() {
			t.Error("OBST AND/OR-graph should be nonserial for n >= 3")
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	if err := (&Problem{P: []float64{1}, Q: []float64{1}}).Validate(); err == nil {
		t.Error("short Q accepted")
	}
	if err := (&Problem{P: []float64{-1}, Q: []float64{0, 0}}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (&Problem{P: []float64{math.NaN()}, Q: []float64{0, 0}}).Validate(); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestSingleKey(t *testing.T) {
	p := &Problem{P: []float64{1}, Q: []float64{0.5, 0.5}}
	tab, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// One key at depth 0 (1 comparison) plus two dummies at depth 1
	// (2 comparisons each): 1*1 + 0.5*2 + 0.5*2 = 3.
	if math.Abs(tab.OptimalCost()-3) > 1e-9 {
		t.Errorf("cost %v, want 3", tab.OptimalCost())
	}
}

func TestPropertyKnuthEqualsDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(15))
		a, err := p.Solve()
		if err != nil {
			return false
		}
		b, err := p.SolveKnuth()
		if err != nil {
			return false
		}
		return math.Abs(a.OptimalCost()-b.OptimalCost()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulateBusLinearCompletion(t *testing.T) {
	// The OBST graph has the Figure-2 shape, so the broadcast-bus design
	// completes linearly: T_d = n+1 (n keys plus the dummy level),
	// matching Proposition 2's T_d(N) = N with N = n+1 node levels.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 33, 64} {
		p := randomProblem(rng, n)
		res, err := p.SimulateBus()
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion != float64(n+1) {
			t.Errorf("n=%d: bus completion %v, want %d", n, res.Completion, n+1)
		}
		tab, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-tab.OptimalCost()) > 1e-9 {
			t.Errorf("n=%d: bus cost %v != DP %v", n, res.Cost, tab.OptimalCost())
		}
		if res.Processors != n*(n+1)/2 {
			t.Errorf("n=%d: %d processors", n, res.Processors)
		}
	}
}

func TestSimulateSystolicDoubles(t *testing.T) {
	// Serialisation doubles completion (Proposition 3's 2N shape).
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 3, 8, 21, 64} {
		p := randomProblem(rng, n)
		bus, err := p.SimulateBus()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := p.SimulateSystolic()
		if err != nil {
			t.Fatal(err)
		}
		if sys.Completion != 2*bus.Completion {
			t.Errorf("n=%d: systolic %v, bus %v: want exact 2x", n, sys.Completion, bus.Completion)
		}
		tab, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sys.Cost-tab.OptimalCost()) > 1e-9 {
			t.Errorf("n=%d: systolic cost %v != DP %v", n, sys.Cost, tab.OptimalCost())
		}
	}
}
