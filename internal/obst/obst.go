// Package obst implements the optimal binary-search-tree problem, the
// second polyadic DP example Section 2.1 of the paper names ("finding the
// optimal binary search tree and computing the minimum-cost order of
// multiplying a string of matrices"). The formulation is polyadic —
//
//	c(i,j) = w(i,j) + min_k { c(i,k-1) + c(k,j) }
//
// with w(i,j) the total access weight of keys i..j and the gaps around
// them — and has exactly the AND/OR-graph shape of Figure 2, so the
// Section 6.2 parallel schemes apply unchanged. The package provides the
// O(n^3) DP of the recurrence, Knuth's O(n^2) root-monotonicity speedup
// (an ablation on the amount of work an OR-node must do), a brute-force
// validator, and the AND/OR-graph construction.
package obst

import (
	"fmt"
	"math"

	"systolicdp/internal/andor"
)

// Problem is a set of n keys in order: P[i] is the access weight of key i
// (i = 0..n-1) and Q[i] the weight of the gap before key i (Q[n] after
// the last). Weights need not be normalised probabilities.
type Problem struct {
	P []float64
	Q []float64
}

// Validate checks shape and non-negativity.
func (p *Problem) Validate() error {
	n := len(p.P)
	if n == 0 {
		return fmt.Errorf("obst: no keys")
	}
	if len(p.Q) != n+1 {
		return fmt.Errorf("obst: have %d gap weights, want %d", len(p.Q), n+1)
	}
	for i, v := range p.P {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("obst: P[%d] = %v", i, v)
		}
	}
	for i, v := range p.Q {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("obst: Q[%d] = %v", i, v)
		}
	}
	return nil
}

// Table is the DP result. Cost[i][j] is the optimal expected search cost
// of the subtree over keys i..j-1 plus gaps i..j (Cost[i][i] = Q[i] is
// the empty tree over gap i, the CLRS convention), Root the chosen root
// key index, and W the cached weight sums.
type Table struct {
	N     int
	Cost  [][]float64
	Root  [][]int
	W     [][]float64
	Inner int // inner-loop iterations performed (for the Knuth ablation)
}

func (p *Problem) tables() (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.P)
	t := &Table{N: n}
	t.Cost = make([][]float64, n+1)
	t.Root = make([][]int, n+1)
	t.W = make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		t.Cost[i] = make([]float64, n+1)
		t.Root[i] = make([]int, n+1)
		t.W[i] = make([]float64, n+1)
		t.W[i][i] = p.Q[i]
		t.Cost[i][i] = p.Q[i] // empty subtree over gap i (CLRS convention)
		for j := i + 1; j <= n; j++ {
			t.W[i][j] = t.W[i][j-1] + p.P[j-1] + p.Q[j]
		}
		for j := range t.Root[i] {
			t.Root[i][j] = -1
		}
	}
	return t, nil
}

// Solve runs the O(n^3) DP: for every span the split minimum ranges over
// all roots. This is the direct polyadic evaluation an OR-node performs.
func (p *Problem) Solve() (*Table, error) {
	t, err := p.tables()
	if err != nil {
		return nil, err
	}
	n := t.N
	for s := 1; s <= n; s++ {
		for i := 0; i+s <= n; i++ {
			j := i + s
			best, arg := math.Inf(1), -1
			for k := i + 1; k <= j; k++ {
				t.Inner++
				c := t.Cost[i][k-1] + t.Cost[k][j]
				if c < best {
					best, arg = c, k
				}
			}
			t.Cost[i][j] = best + t.W[i][j]
			t.Root[i][j] = arg
		}
	}
	return t, nil
}

// SolveKnuth runs the O(n^2) variant: by root monotonicity,
// Root[i][j-1] <= Root[i][j] <= Root[i+1][j], so each OR-node scans only
// the monotone window. Results are identical to Solve with quadratically
// fewer inner iterations — the paper's "less the Principle of Optimality
// is applied, the more comparisons" tradeoff in sharpened form.
func (p *Problem) SolveKnuth() (*Table, error) {
	t, err := p.tables()
	if err != nil {
		return nil, err
	}
	n := t.N
	for i := 0; i < n; i++ {
		// Spans of one key: the root is forced.
		j := i + 1
		t.Cost[i][j] = t.W[i][j] + t.Cost[i][i] + t.Cost[j][j]
		t.Root[i][j] = i + 1
		t.Inner++
	}
	for s := 2; s <= n; s++ {
		for i := 0; i+s <= n; i++ {
			j := i + s
			lo := t.Root[i][j-1]
			hi := t.Root[i+1][j]
			best, arg := math.Inf(1), -1
			for k := lo; k <= hi; k++ {
				t.Inner++
				c := t.Cost[i][k-1] + t.Cost[k][j]
				if c < best {
					best, arg = c, k
				}
			}
			t.Cost[i][j] = best + t.W[i][j]
			t.Root[i][j] = arg
		}
	}
	return t, nil
}

// OptimalCost returns the weighted search cost of the optimal tree.
func (t *Table) OptimalCost() float64 { return t.Cost[0][t.N] }

// Tree materialises the optimal tree: Tree[i] = (left child key index,
// right child key index), -1 for none; returned with the root key index.
func (t *Table) Tree() (root int, left, right []int) {
	left = make([]int, t.N)
	right = make([]int, t.N)
	for i := range left {
		left[i], right[i] = -1, -1
	}
	var build func(i, j int) int
	build = func(i, j int) int {
		if i >= j {
			return -1
		}
		k := t.Root[i][j]
		key := k - 1
		left[key] = build(i, k-1)
		right[key] = build(k, j)
		return key
	}
	root = build(0, t.N)
	return root, left, right
}

// SearchCost computes the expected weighted search cost of an explicit
// tree directly — sum over keys of P[i]*(depth+1) plus gaps of
// Q[i]*depth_of_leaf — to validate the DP value.
func (p *Problem) SearchCost(root int, left, right []int) float64 {
	total := 0.0
	var rec func(key, depth, lo, hi int)
	rec = func(key, depth, lo, hi int) {
		if key < 0 {
			return
		}
		total += p.P[key] * float64(depth+1)
		// A dummy (gap) leaf hangs one level below its parent key and a
		// failed search compares against the whole path: q * (depth+2).
		if left[key] < 0 {
			total += p.Q[key] * float64(depth+2)
		}
		if right[key] < 0 {
			total += p.Q[key+1] * float64(depth+2)
		}
		rec(left[key], depth+1, lo, key)
		rec(right[key], depth+1, key+1, hi)
	}
	rec(root, 0, 0, len(p.P))
	return total
}

// BruteForce enumerates all binary search trees over the keys (Catalan
// growth) and returns the optimal cost; small n only.
func (p *Problem) BruteForce() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	t, err := p.tables() // reuse W
	if err != nil {
		return 0, err
	}
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i >= j {
			return p.Q[i] // empty subtree
		}
		best := math.Inf(1)
		for k := i + 1; k <= j; k++ {
			if c := rec(i, k-1) + rec(k, j); c < best {
				best = c
			}
		}
		return best + t.W[i][j]
	}
	return rec(0, t.N), nil
}

// BuildANDOR constructs the problem's AND/OR-graph: identical in shape to
// the matrix-chain graph of Figure 2, with the span weight w(i,j) as the
// AND-node additive constant. Root value equals the DP optimum.
func (p *Problem) BuildANDOR() (*andor.Graph, error) {
	t, err := p.tables()
	if err != nil {
		return nil, err
	}
	n := t.N
	g := &andor.Graph{}
	id := make([][]int, n+1)
	for i := range id {
		id[i] = make([]int, n+1)
	}
	for i := 0; i <= n; i++ {
		id[i][i] = g.AddLeaf(p.Q[i]) // empty subtree over gap i
	}
	for s := 1; s <= n; s++ {
		for i := 0; i+s <= n; i++ {
			j := i + s
			ands := make([]int, 0, s)
			for k := i + 1; k <= j; k++ {
				ands = append(ands, g.AddNode(andor.And, []int{id[i][k-1], id[k][j]}, t.W[i][j]))
			}
			id[i][j] = g.AddNode(andor.Or, ands, 0)
		}
	}
	g.Roots = []int{id[0][n]}
	return g, nil
}
