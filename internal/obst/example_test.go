package obst_test

import (
	"fmt"

	"systolicdp/internal/obst"
)

// ExampleProblem_SolveKnuth solves the CLRS textbook instance with the
// O(n^2) monotone-root algorithm.
func ExampleProblem_SolveKnuth() {
	p := &obst.Problem{
		P: []float64{0.15, 0.10, 0.05, 0.10, 0.20},
		Q: []float64{0.05, 0.10, 0.05, 0.05, 0.05, 0.10},
	}
	tab, err := p.SolveKnuth()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", tab.OptimalCost())
	root, _, _ := tab.Tree()
	fmt.Println(root + 1)
	// Output:
	// 2.75
	// 2
}
