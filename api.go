package systolicdp

import (
	"context"
	"math/rand"

	"systolicdp/internal/andor"
	"systolicdp/internal/bcastarray"
	"systolicdp/internal/bnb"
	"systolicdp/internal/core"
	"systolicdp/internal/dnc"
	"systolicdp/internal/dtw"
	"systolicdp/internal/experiments"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/mesh"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/obst"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
	"systolicdp/internal/workload"
)

// Re-exported problem and solution types: the classification machinery of
// Section 2 and Table 1.
type (
	// Class is a DP formulation class (monadic/polyadic x serial/nonserial).
	Class = core.Class
	// Problem is any DP problem the library can classify and solve.
	Problem = core.Problem
	// Solution is the result of Solve.
	Solution = core.Solution
	// Recommendation is one row of the paper's Table 1.
	Recommendation = core.Recommendation

	// MultistageProblem is a monadic-serial shortest-path problem.
	MultistageProblem = core.MultistageProblem
	// NodeValuedProblem is the equation-(4) form for the Design-3 array.
	NodeValuedProblem = core.NodeValuedProblem
	// MatrixStringProblem is a polyadic-serial matrix string.
	MatrixStringProblem = core.MatrixStringProblem
	// ChainOrderingProblem is the optimal-parenthesisation problem.
	ChainOrderingProblem = core.ChainOrderingProblem
	// NonserialChainProblem is the ternary-chain nonserial problem.
	NonserialChainProblem = core.NonserialChainProblem

	// Graph is an explicit multistage graph.
	Graph = multistage.Graph
	// NodeValued is a node-valued serial problem (equation (4)).
	NodeValued = multistage.NodeValued
	// Path is an optimal path through a multistage graph.
	Path = multistage.Path
	// Matrix is a dense semiring matrix.
	Matrix = matrix.Matrix
	// Chain3 is the tri-variable nonserial chain of equation (36).
	Chain3 = nonserial.Chain3
)

// Class constants.
const (
	Monadic   = core.Monadic
	Polyadic  = core.Polyadic
	Serial    = core.Serial
	Nonserial = core.Nonserial
)

// Solve classifies the problem and applies the method the paper's Table 1
// prescribes for its class.
func Solve(p Problem) (*Solution, error) { return core.Solve(p) }

// SolveCtx is Solve bounded by a context deadline or cancellation. The
// underlying computation is not interruptible; on early return it
// finishes in the background and its result is discarded.
func SolveCtx(ctx context.Context, p Problem) (*Solution, error) { return core.SolveCtx(ctx, p) }

// SolveGraphBatch solves a batch of identically-shaped single-sink
// multistage graphs in one streamed Design-1 run — all instances share a
// single pipeline fill. This is the batch entry point the dpserve
// micro-batcher flushes through.
func SolveGraphBatch(gs []*Graph) ([]*Solution, error) { return core.SolveGraphBatch(gs) }

// DTW is the dynamic-time-warping problem in classifiable form: Solve
// routes it to the anti-diagonal systolic array (see DTWDistance).
type DTW = core.DTWProblem

// TableOne returns the paper's summary table (Table 1).
func TableOne() []Recommendation { return core.TableOne() }

// Recommend returns the Table 1 row for a class.
func Recommend(c Class) Recommendation { return core.Recommend(c) }

// SolvePipelined runs Design 1 (the pipelined array of Figure 3) on the
// matrix string ms and initial vector v, returning ms[0].(...(ms[K-1].v)).
func SolvePipelined(ms []*Matrix, v []float64) ([]float64, error) {
	return pipearray.Solve(ms, v)
}

// SolveBroadcast runs Design 2 (the broadcast array of Figure 4).
func SolveBroadcast(ms []*Matrix, v []float64) ([]float64, error) {
	return bcastarray.Solve(ms, v)
}

// FeedbackResult is the Design-3 result: optimal cost, assignment, and
// per-PE busy counts.
type FeedbackResult = fbarray.Result

// SolveFeedback runs Design 3 (the feedback array of Figure 5) on a
// node-valued serial problem, returning cost and reconstructed path.
func SolveFeedback(p *NodeValued) (*FeedbackResult, error) { return fbarray.Solve(p) }

// OptimalOrder solves the matrix-chain ordering problem (equation (6)) and
// returns the minimum cost and parenthesisation.
func OptimalOrder(dims []int) (cost float64, order string, err error) {
	tab, err := matchain.DP(dims)
	if err != nil {
		return 0, "", err
	}
	return tab.OptimalCost(), tab.Parenthesization(), nil
}

// ParallelChainProduct multiplies a string of matrices over (MIN,+) with
// the Section-4 divide-and-conquer schedule on k workers.
func ParallelChainProduct(ms []*Matrix, k int) (*Matrix, error) {
	res, err := dnc.ParallelChain(semiring.MinPlus{}, ms, k)
	if err != nil {
		return nil, err
	}
	return res.Product, nil
}

// OptimalGranularity is the paper's KT^2-optimal processor count
// N/log2(N) for multiplying a string of N matrices (Theorem 1).
func OptimalGranularity(n int) int { return dnc.OptimalGranularity(n) }

// RandomGraph generates an n-stage multistage graph with m nodes per stage
// and uniform edge costs in [lo, hi).
func RandomGraph(rng *rand.Rand, n, m int, lo, hi float64) *Graph {
	return multistage.RandomUniform(rng, n, m, lo, hi)
}

// SingleSourceSink wraps a graph with one-node first and last stages
// (Figure 1(a)).
func SingleSourceSink(g *Graph) *Graph {
	return multistage.SingleSourceSink(semiring.MinPlus{}, g)
}

// ShortestPath solves a multistage graph with the sequential baseline and
// returns an optimal path.
func ShortestPath(g *Graph) Path {
	return multistage.SolveOptimal(semiring.MinPlus{}, g)
}

// Workload returns a named node-valued workload ("traffic", "circuit",
// "fluid", "scheduling") from Section 2.2 of the paper.
func Workload(name string, rng *rand.Rand, stages, values int) (*NodeValued, error) {
	return workload.ByName(name, rng, stages, values)
}

// BranchAndBound solves a multistage graph by best-first branch-and-bound
// with the DP dominance test — Section 1's observation that DP is a
// special case of B&B — returning the optimal cost, a path, and the
// number of OR-tree nodes expanded.
func BranchAndBound(g *Graph, workers int) (cost float64, path []int, expanded int, err error) {
	res, err := bnb.Solve(g, bnb.Options{
		Dominance: true,
		Bound:     bnb.NewBoundStageMin(g),
		Workers:   workers,
	})
	if err != nil {
		return 0, nil, 0, err
	}
	return res.Cost, res.Path, res.Expanded, nil
}

// MeshMultiply computes the (MIN,+) product of two equal square matrices
// on the 2D systolic mesh — the matrix-multiplication array Section 4
// treats as its unit of work (completion in 3n-2 cycles).
func MeshMultiply(a, b *Matrix) (*Matrix, error) {
	return mesh.Mul(semiring.MinPlus{}, a, b)
}

// BST is the optimal binary-search-tree problem of Section 2.1 (the
// paper's second polyadic example): P are key access weights, Q the gap
// weights around them.
type BST = obst.Problem

// OptimalBST solves the optimal binary-search-tree problem with Knuth's
// O(n^2) algorithm and returns the expected search cost, the root key
// index, and the child arrays of the optimal tree.
func OptimalBST(p *BST) (cost float64, root int, left, right []int, err error) {
	tab, err := p.SolveKnuth()
	if err != nil {
		return 0, 0, nil, nil, err
	}
	root, left, right = tab.Tree()
	return tab.OptimalCost(), root, left, right, nil
}

// DataflowChainProduct multiplies a heterogeneous matrix string in its
// optimal parenthesisation order (the secondary optimization problem of
// Section 4) on `workers` asynchronous processors, returning the product,
// the total scalar-operation count, and the simulated makespan.
func DataflowChainProduct(ms []*Matrix, workers int) (*Matrix, float64, float64, error) {
	prod, st, err := dnc.DataflowChain(semiring.MinPlus{}, ms, workers)
	if err != nil {
		return nil, 0, 0, err
	}
	return prod, st.TotalOps, st.Makespan, nil
}

// RunExperiment regenerates one of the paper's tables/figures by ID
// (E1-E10; see DESIGN.md) and returns the rendered table.
func RunExperiment(id string) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	tab, err := e.Run()
	if err != nil {
		return "", err
	}
	return tab.Render(), nil
}

// ExperimentIDs lists the available experiment IDs in order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// SolveFeedbackStaged runs Design 3 with per-stage F_i units (the general
// Figure 5) on a staged node-valued problem.
func SolveFeedbackStaged(p *StagedNodeValued) (*FeedbackResult, error) {
	arr, err := fbarray.NewStaged(semiring.MinPlus{}, p)
	if err != nil {
		return nil, err
	}
	return arr.Run(false)
}

// StagedNodeValued is the node-valued serial problem with stage-dependent
// edge costs.
type StagedNodeValued = multistage.StagedNodeValued

// StreamProblem is one instance of a Design-1 batch (see StreamPipelined).
type StreamProblem = pipearray.StreamProblem

// StreamPipelined feeds a batch of identically-shaped matrix-string
// problems back-to-back through one Design-1 array — B results for a
// single pipeline fill — returning each problem's result vector.
func StreamPipelined(problems []StreamProblem) ([][]float64, error) {
	st, err := pipearray.NewStream(problems)
	if err != nil {
		return nil, err
	}
	return st.Run(false)
}

// OptimalEliminationOrder computes the cheapest order in which to
// eliminate the interior stages of an irregular multistage graph (the
// Section 5 closing analysis; the recurrence is the secondary
// optimization problem). It returns the total comparison count and the
// elimination sequence.
func OptimalEliminationOrder(stageSizes []int) (int, []int, error) {
	return andor.EliminationOrder(stageSizes)
}

// DTWDistance computes the dynamic-time-warping distance between two
// series — the pattern-recognition DP of the paper's Section 1 citations
// — on the anti-diagonal systolic array (n+m-1 cycles), cross-checked
// against the sequential lattice internally.
func DTWDistance(x, y []float64) (float64, error) {
	arr, err := dtw.New(y, dtw.AbsDist)
	if err != nil {
		return 0, err
	}
	got, _, err := arr.Match(x, false)
	return got, err
}
