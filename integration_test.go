package systolicdp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/andor"
	"systolicdp/internal/bcastarray"
	"systolicdp/internal/bnb"
	"systolicdp/internal/dnc"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/mesh"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obst"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// TestEverySolverAgreesOnOneGraph runs a single multistage instance
// through every shortest-path machine in the repository and demands one
// answer: the cross-cutting invariant behind the whole paper.
func TestEverySolverAgreesOnOneGraph(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1985))
	const n, m = 8, 3 // N = 8 stage-to-stage matrices after wrapping: power of 2 for AND/OR
	inner := multistage.RandomUniform(rng, n, m, 1, 10)

	want := multistage.SolveOptimal(s, inner).Cost
	results := map[string]float64{}

	// Forward and backward functional equations (eqs 1-2).
	results["forward"] = semiring.Fold(s, multistage.SolveForward(s, inner))
	results["backward"] = semiring.Fold(s, multistage.SolveBackward(s, inner))
	results["bruteforce"] = multistage.BruteForce(s, inner).Cost

	// Designs 1-2 on the wrapped single-source/sink string.
	g := multistage.SingleSourceSink(s, inner)
	mats := g.Matrices()
	k := len(mats)
	v := mats[k-1].Col(0)
	d1, err := pipearray.Solve(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	results["design1"] = d1[0]
	d2, err := bcastarray.Solve(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	results["design2"] = d2[0]

	// Divide-and-conquer product of the full string (eq 15), three ways:
	// serial, balanced tree, scheduled workers, and 2D meshes per product.
	full := matrix.ChainMat(s, mats)
	results["chainmat"] = full.At(0, 0)
	results["chaintree"] = matrix.ChainMatTree(s, mats).At(0, 0)
	par, err := dnc.ParallelChain(s, mats, 3)
	if err != nil {
		t.Fatal(err)
	}
	results["dnc"] = par.Product.At(0, 0)

	// AND/OR-graph reductions (Theorem 2's graphs) with p = 2 and 4,
	// bottom-up, top-down, parallel, and mapped onto the systolic engine.
	// The inner graph has 7 cost matrices; wrap once more to 8 = 2^3.
	paddedSizes := append([]int{m}, inner.StageSizes...)
	pad := matrix.Zeros(s, m, m)
	for i := 0; i < m; i++ {
		pad.Set(i, i, s.One())
	}
	padded := &multistage.Graph{
		StageSizes: paddedSizes,
		Cost:       append([]*matrix.Matrix{pad}, inner.Cost...),
	}
	if err := padded.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} { // N = 8: powers of 2 and 8 divide evenly
		got, err := andor.SolveRegular(s, padded, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		results[fmt.Sprintf("andor-p%d", p)] = got
		ao, err := andor.BuildRegular(padded, p)
		if err != nil {
			t.Fatal(err)
		}
		down, _, err := ao.EvaluateTopDown(s, ao.Roots)
		if err != nil {
			t.Fatal(err)
		}
		results[fmt.Sprintf("andor-topdown-p%d", p)] = semiring.Fold(s, rootVals(down, ao.Roots))
		parv, _, err := ao.EvaluateParallel(s, 4)
		if err != nil {
			t.Fatal(err)
		}
		results[fmt.Sprintf("andor-parallel-p%d", p)] = semiring.Fold(s, rootVals(parv, ao.Roots))
		sys, err := ao.MapSystolic(s, false)
		if err != nil {
			t.Fatal(err)
		}
		results[fmt.Sprintf("andor-systolic-p%d", p)] = semiring.Fold(s, sys.RootValues)
	}

	// Branch-and-bound with dominance = DP (Section 1).
	bb, err := bnb.Solve(inner, bnb.Options{Dominance: true, Bound: bnb.NewBoundStageMin(inner)})
	if err != nil {
		t.Fatal(err)
	}
	results["bnb"] = bb.Cost

	// Mesh-based evaluation: fold the chain with 2D systolic products.
	acc := matrix.Identity(s, m)
	for _, c := range inner.Cost {
		acc, err = mesh.Mul(s, acc, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	best := s.Zero()
	for _, x := range acc.Data {
		best = s.Add(best, x)
	}
	results["mesh-chain"] = best

	for name, got := range results {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: %v, want %v", name, got, want)
		}
	}
}

func rootVals(vals []float64, roots []int) []float64 {
	out := make([]float64, len(roots))
	for i, r := range roots {
		out[i] = vals[r]
	}
	return out
}

// TestChainOrderingConsistency runs one matrix chain through every
// ordering machine: sequential DP, wavefront, bus and systolic timing
// simulations, the AND/OR-graph, and the dataflow executor.
func TestChainOrderingConsistency(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1986))
	dims := []int{7, 3, 12, 2, 9, 4, 11, 6}
	tab, err := matchain.DP(dims)
	if err != nil {
		t.Fatal(err)
	}
	want := tab.OptimalCost()

	wf, err := matchain.Wavefront(dims, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wf.OptimalCost() != want {
		t.Errorf("wavefront %v, want %v", wf.OptimalCost(), want)
	}
	bus, err := matchain.SimulateBus(dims)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Cost != want {
		t.Errorf("bus %v, want %v", bus.Cost, want)
	}
	sys, err := matchain.SimulateSystolic(dims)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cost != want {
		t.Errorf("systolic %v, want %v", sys.Cost, want)
	}
	g, err := matchain.BuildANDOR(dims)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := g.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if vals[g.Roots[0]] != want {
		t.Errorf("AND/OR %v, want %v", vals[g.Roots[0]], want)
	}
	// The serialised graph on the systolic engine (Figure 8 end-to-end).
	sg, _ := g.Serialize()
	mres, err := sg.MapSystolic(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if mres.RootValues[0] != want {
		t.Errorf("mapped systolic %v, want %v", mres.RootValues[0], want)
	}
	// The dataflow executor's op count equals the DP optimum.
	ms := make([]*matrix.Matrix, len(dims)-1)
	for i := range ms {
		ms[i] = matrix.Random(rng, dims[i], dims[i+1], 0, 10)
	}
	_, st, err := dnc.DataflowChain(s, ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.TotalOps-want) > 1e-9 {
		t.Errorf("dataflow ops %v, want %v", st.TotalOps, want)
	}
}

// TestOBSTAndChainShareMachinery checks that the OBST AND/OR-graph (the
// paper's other polyadic example) serialises and maps onto the engine
// like the matrix-chain graph.
func TestOBSTAndChainShareMachinery(t *testing.T) {
	s := semiring.MinPlus{}
	p := &obst.Problem{
		P: []float64{0.15, 0.10, 0.05, 0.10, 0.20},
		Q: []float64{0.05, 0.10, 0.05, 0.05, 0.05, 0.10},
	}
	tab, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.BuildANDOR()
	if err != nil {
		t.Fatal(err)
	}
	sg, added := g.Serialize()
	if added == 0 {
		t.Error("OBST graph should need dummy nodes")
	}
	res, err := sg.MapSystolic(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RootValues[0]-tab.OptimalCost()) > 1e-9 {
		t.Errorf("mapped OBST %v, want %v", res.RootValues[0], tab.OptimalCost())
	}
}

// TestDesign3EndToEndOnAllWorkloads runs the full monadic-serial pipeline
// (workload -> Design 3 -> path) for each Section 2.2 domain and verifies
// costs and paths against the expanded-graph solver.
func TestDesign3EndToEndOnAllWorkloads(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1987))
	for _, name := range []string{"traffic", "circuit", "fluid", "scheduling"} {
		p, err := Workload(name, rng, 7, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fbarray.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := multistage.SolveOptimal(s, p.Expand())
		if math.Abs(res.Cost-want.Cost) > 1e-9 {
			t.Errorf("%s: Design 3 %v, graph solver %v", name, res.Cost, want.Cost)
		}
	}
}
