// Benchmarks: one per paper artifact (E1-E10, matching DESIGN.md's
// per-experiment index) plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
package systolicdp

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"systolicdp/internal/andor"
	"systolicdp/internal/bcastarray"
	"systolicdp/internal/bnb"
	"systolicdp/internal/core"
	"systolicdp/internal/dnc"
	"systolicdp/internal/dtw"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/mesh"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/obst"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
	"systolicdp/internal/serve"
	"systolicdp/internal/spec"
	"systolicdp/internal/workload"
)

var mp = semiring.MinPlus{}

func graphCase(seed int64, n, m int) ([]*matrix.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, n-1, m, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	mats := g.Matrices()
	k := len(mats)
	return mats[:k-1], mats[k-1].Col(0)
}

// BenchmarkE1PipelinedArray regenerates the Design-1 rows of E1: a
// 32-stage, m=8 graph searched by the pipelined array (Figure 3).
func BenchmarkE1PipelinedArray(b *testing.B) {
	ms, v := graphCase(1, 32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pipearray.Solve(ms, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2BroadcastArray regenerates the Design-2 rows of E2 on the
// same workload (Figure 4).
func BenchmarkE2BroadcastArray(b *testing.B) {
	ms, v := graphCase(2, 32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bcastarray.Solve(ms, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3FeedbackArray regenerates E3: Design 3 (Figure 5) on a
// 32-stage node-valued problem with path reconstruction.
func BenchmarkE3FeedbackArray(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := multistage.RandomNodeValued(rng, 32, 8, 0, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fbarray.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Granularity regenerates Figure 6: the full KT^2 sweep over K
// for N = 4096 under equation (29).
func BenchmarkE4Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ks, _ := dnc.ArgminKT2(4096, 1, 4096)
		if len(ks) == 0 {
			b.Fatal("no argmin")
		}
	}
}

// BenchmarkE4ScheduleSim cross-checks Figure 6 by simulating the actual
// schedule at the paper's reported optimum K = 431.
func BenchmarkE4ScheduleSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dnc.Schedule(4096, 431); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5AsymptoticPU regenerates one row of the Proposition-1 table:
// PU at k = N/log2(N) for N = 2^16.
func BenchmarkE5AsymptoticPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dnc.PUAsymptotic(1<<16, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6AT2 regenerates the Theorem-1 policy table for N = 2^16.
func BenchmarkE6AT2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := dnc.TheoremOneTable(1 << 16)
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkE7BinaryPartition regenerates the Theorem-2 comparison:
// building and searching the p=2 reduction graph for N=16, m=3.
func BenchmarkE7BinaryPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := multistage.RandomUniform(rng, 17, 3, 1, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := andor.SolveRegular(mp, g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7QuaternaryPartition is the p=4 counterpoint Theorem 2 rules
// out: same problem, bigger graph.
func BenchmarkE7QuaternaryPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := multistage.RandomUniform(rng, 17, 3, 1, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := andor.SolveRegular(mp, g, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8NonserialElimination regenerates E8: the equation-(40)
// elimination on a 12-variable ternary chain.
func BenchmarkE8NonserialElimination(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := nonserial.RandomUniformChain3(rng, 12, 6, 0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Eliminate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8GroupedOnDesign3 runs the grouped serial problem on the
// Design-3 array — the systolic half of E8.
func BenchmarkE8GroupedOnDesign3(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := nonserial.RandomUniformChain3(rng, 8, 4, 0, 10)
	nv, err := c.GroupToSerial()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fbarray.Solve(nv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9MatrixChainOrdering regenerates E9: sequential DP, the
// broadcast-bus model (Prop 2) and the serialised systolic model (Prop 3)
// on a 64-matrix chain.
func BenchmarkE9MatrixChainOrdering(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	dims, err := workload.MatrixChainDims(rng, 64, 2, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequentialDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matchain.DP(dims); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("busModel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matchain.SimulateBus(dims); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("systolicModel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matchain.SimulateSystolic(dims); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Classification regenerates E10: dispatching one problem per
// class through the Table-1 solver.
func BenchmarkE10Classification(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	inner := multistage.RandomUniform(rng, 5, 4, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	chain := nonserial.RandomUniformChain3(rng, 4, 3, 0, 10)
	probs := []core.Problem{
		&core.MultistageProblem{Graph: g, Design: 2},
		&core.ChainOrderingProblem{Dims: []int{30, 35, 15, 5, 10, 20, 25}},
		&core.NonserialChainProblem{Chain: chain},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range probs {
			if _, err := core.Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md Section 4) ---

// BenchmarkRunnerAblation contrasts the lock-step engine with the
// goroutine-per-PE runner on the same Design-1 workload.
func BenchmarkRunnerAblation(b *testing.B) {
	ms, v := graphCase(11, 16, 8)
	b.Run("lockstep", func(b *testing.B) {
		arr, err := pipearray.New(ms, v)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := arr.Run(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		arr, err := pipearray.New(ms, v)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := arr.Run(true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPathRegisters measures Design-3 path tracking against the
// baseline DP with and without reconstruction.
func BenchmarkPathRegisters(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	p := multistage.RandomNodeValued(rng, 32, 8, 0, 50)
	b.Run("baselineNoPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Solve(mp)
		}
	})
	b.Run("baselineWithPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SolvePath(mp)
		}
	})
}

// BenchmarkKernelAblation contrasts the semiring-generic matrix kernel
// with a hand-specialised (MIN,+) loop, the generic-vs-specialised
// tradeoff DESIGN.md notes.
func BenchmarkKernelAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := matrix.Random(rng, 64, 64, 0, 10)
	c := matrix.Random(rng, 64, 64, 0, 10)
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matrix.MulMatGeneric(mp, a, c)
		}
	})
	b.Run("specialised", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matrix.MulMat(mp, a, c) // dispatches to the tropical fast path
		}
	})
}

// BenchmarkWavefrontScaling measures the goroutine wavefront ordering
// solver across worker counts.
func BenchmarkWavefrontScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	dims, err := workload.MatrixChainDims(rng, 256, 2, 30)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matchain.Wavefront(dims, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelChainWorkers measures the Section-4 divide-and-conquer
// product across worker counts — the practical side of Figure 6.
func BenchmarkParallelChainWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	ms := make([]*matrix.Matrix, 64)
	for i := range ms {
		ms[i] = matrix.Random(rng, 16, 16, 0, 10)
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dnc.ParallelChain(mp, ms, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "=" + string(buf)
}

// BenchmarkMeshMultiply measures the 2D systolic mesh (Section 4's unit
// of work) against the sequential kernel on the same product.
func BenchmarkMeshMultiply(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	x := matrix.Random(rng, 16, 16, 0, 10)
	y := matrix.Random(rng, 16, 16, 0, 10)
	b.Run("mesh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mesh.Mul(mp, x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matrix.MulMat(mp, x, y)
		}
	})
}

// BenchmarkOBSTKnuthAblation contrasts the O(n^3) polyadic DP with
// Knuth's O(n^2) root-monotonicity speedup on the optimal-BST problem.
func BenchmarkOBSTKnuthAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	p := &obst.Problem{P: make([]float64, 128), Q: make([]float64, 129)}
	for i := range p.P {
		p.P[i] = rng.Float64()
	}
	for i := range p.Q {
		p.Q[i] = rng.Float64() * 0.5
	}
	b.Run("cubicDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("knuth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveKnuth(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDataflowChain measures the optimal-order asynchronous
// evaluation of a heterogeneous chain (Section 4's dataflow treatment).
func BenchmarkDataflowChain(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	dims := make([]int, 33)
	for i := range dims {
		dims[i] = 2 + rng.Intn(14)
	}
	ms := make([]*matrix.Matrix, len(dims)-1)
	for i := range ms {
		ms[i] = matrix.Random(rng, dims[i], dims[i+1], 0, 10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dnc.DataflowChain(mp, ms, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBnBDominanceAblation shows the Section-1 equivalence in cost
// terms: B&B with the dominance test collapses to DP-sized search, while
// without it the OR-tree search pays exponentially.
func BenchmarkBnBDominanceAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	g := multistage.RandomUniform(rng, 10, 4, 0, 10)
	bound := bnb.NewBoundStageMin(g)
	b.Run("withDominance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bnb.Solve(g, bnb.Options{Dominance: true, Bound: bound}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("withoutDominance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bnb.Solve(g, bnb.Options{Bound: bound}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bnb.Solve(g, bnb.Options{Dominance: true, Bound: bound, Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMapSystolic measures running a serialised AND/OR-graph on the
// engine (Section 6.2's mapping) vs plain bottom-up evaluation.
func BenchmarkMapSystolic(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	g := multistage.RandomUniform(rng, 9, 3, 0, 10)
	ao, err := andor.BuildRegular(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ao.MapSystolic(mp, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bottomUp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ao.Evaluate(mp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamVsSeparate measures batch pipelining through Design 1:
// B problems back-to-back with one pipeline fill versus B separate runs.
// The hardware win is in simulated cycles (B*K'*m + m - 1 versus
// B*(K'*m + m - 1), asserted in pipearray's tests); this benchmark
// reports the simulator's host-time cost of the two drive modes.
func BenchmarkStreamVsSeparate(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const batch, k, m = 8, 4, 8
	probs := make([]pipearray.StreamProblem, batch)
	for i := range probs {
		ms := make([]*matrix.Matrix, k)
		for j := range ms {
			ms[j] = matrix.Random(rng, m, m, 0, 10)
		}
		v := make([]float64, m)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		probs[i] = pipearray.StreamProblem{Ms: ms, V: v}
	}
	b.Run("streamed", func(b *testing.B) {
		st, err := pipearray.NewStream(probs)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := st.Run(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pr := range probs {
				if _, err := pipearray.Solve(pr.Ms, pr.V); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkStagedDesign3 measures the staged (per-stage F_i) feedback
// array against the unstaged one on equivalent problems.
func BenchmarkStagedDesign3(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	p := multistage.RandomNodeValued(rng, 24, 8, 0, 50)
	st := &multistage.StagedNodeValued{
		Values: p.Values,
		FK:     func(_ int, x, y float64) float64 { return p.F(x, y) },
	}
	b.Run("unstaged", func(b *testing.B) {
		arr, err := fbarray.New(p)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := arr.Run(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("staged", func(b *testing.B) {
		arr, err := fbarray.NewStaged(mp, st)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := arr.Run(false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPathBetween measures solution-tree extraction and decoding on
// the indexed reduction graph.
func BenchmarkPathBetween(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	g := multistage.RandomUniform(rng, 17, 3, 0, 10) // N = 16
	ao, idx, err := andor.BuildRegularIndexed(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := andor.PathBetween(mp, ao, idx, 0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTW measures the pattern-recognition lattice (Section 1's
// cited application) on the systolic array vs the sequential DP.
func BenchmarkDTW(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = rng.Float64() * 10
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dtw.Sequential(x, y, dtw.AbsDist); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("systolic", func(b *testing.B) {
		arr, err := dtw.New(y, dtw.AbsDist)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := arr.Match(x, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Serving benchmarks (cmd/dpserve path) ----

// serveGraphBody renders a distinct Design-1 graph spec; distinct seeds
// defeat the result cache while keeping one stream-compatible shape.
func serveGraphBody(b *testing.B, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, 4, 6, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	f, err := spec.FromGraph(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	data, err := f.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// benchServe drives the HTTP solving service with concurrent clients.
func benchServe(b *testing.B, cfg serve.Config, body func(int64) []byte) {
	s := serve.New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var salt atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/solve", "application/json",
				bytes.NewReader(body(salt.Add(1))))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkServeBatched measures concurrent distinct Design-1 requests
// with micro-batching on: instances collected within the window share one
// pipeline fill through the streamed array.
func BenchmarkServeBatched(b *testing.B) {
	benchServe(b, serve.Config{
		QueueSize:   4096,
		BatchWindow: 500 * time.Microsecond,
		BatchMax:    32,
		CacheSize:   -1,
	}, func(salt int64) []byte { return serveGraphBody(b, salt) })
}

// BenchmarkServeUnbatched is the ablation: identical traffic with
// batching disabled (BatchMax 1), one array run per request.
func BenchmarkServeUnbatched(b *testing.B) {
	benchServe(b, serve.Config{
		QueueSize: 4096,
		BatchMax:  1,
		CacheSize: -1,
	}, func(salt int64) []byte { return serveGraphBody(b, salt) })
}

// BenchmarkServeCacheHit measures the LRU fast path: every request after
// the first is answered from the cache without touching a solver.
func BenchmarkServeCacheHit(b *testing.B) {
	body := serveGraphBody(b, 1)
	benchServe(b, serve.Config{QueueSize: 4096, CacheSize: 16},
		func(int64) []byte { return body })
}

// ---- Parallel compute-phase ablations (ISSUE 3 tentpole) ----

// BenchmarkLockstepParallelAblation sweeps PE count × compute-phase
// worker count on single Design-1 lock-step runs. The equivalence tests
// prove every cell computes bit-identical results; this table shows where
// sharding the per-cycle PE loop wins (large m on a multi-core host) and
// where the per-cycle barrier loses (small m, or workers > cores).
// workers=1 is the sequential engine — the speedup baseline.
func BenchmarkLockstepParallelAblation(b *testing.B) {
	const stages = 8
	for _, m := range []int{8, 64, 256, 1024} {
		ms, v := graphCase(31, stages, m)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(benchName("m", m)+"/"+benchName("workers", workers), func(b *testing.B) {
				arr, err := pipearray.New(ms, v)
				if err != nil {
					b.Fatal(err)
				}
				arr.SetParallelism(workers)
				arr.SetParallelThreshold(1) // ablate the schedule, not the gate
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := arr.Run(false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// serveWideGraphBody is serveGraphBody with a wide stage (m=32), large
// enough that the streamed array's compute phase dominates a batch solve.
func serveWideGraphBody(b *testing.B, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, 3, 32, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	f, err := spec.FromGraph(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	data, err := f.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkServeEngineParallel is the end-to-end counterpart: identical
// concurrent Design-1 traffic through dpserve with the streamed engine's
// compute phase sequential versus sharded across GOMAXPROCS workers.
func BenchmarkServeEngineParallel(b *testing.B) {
	for _, c := range []struct {
		name    string
		workers int
	}{
		{"engineSeq", 0},
		{"enginePar", runtime.GOMAXPROCS(0)},
	} {
		b.Run(c.name, func(b *testing.B) {
			benchServe(b, serve.Config{
				QueueSize:               4096,
				BatchWindow:             500 * time.Microsecond,
				BatchMax:                32,
				CacheSize:               -1,
				EngineParallelism:       c.workers,
				EngineParallelThreshold: 1,
			}, func(salt int64) []byte { return serveWideGraphBody(b, salt) })
		})
	}
}
